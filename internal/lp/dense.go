package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"sqpr/internal/invariant"
)

// DenseSolver is a reusable, stateful LP solver over one loaded Problem. It owns
// a persistent arena (dense tableau rows, right-hand side, basis, reduced
// costs) that is sized once per Load and reused across re-solves, so the
// steady-state ReSolve path performs no heap allocation.
//
// The intended lifecycle is the branch-and-bound inner loop of
// internal/milp:
//
//	s := lp.NewDenseSolver()
//	s.SetLazy(true)               // optional: lazy row activation
//	s.Load(&prob)                 // compile once
//	sol := s.ReSolve(opts)        // cold solve (two-phase primal)
//	s.Fix(j, true)                // tighten one bound in place
//	sol = s.ReSolve(opts)         // warm re-solve (dual simplex)
//	s.Unfix(j)                    // backtrack
//
// After a successful solve the tableau holds an optimal basis that is both
// primal and dual feasible. Fixing or unfixing variable bounds preserves
// dual feasibility (the objective is unchanged), so a subsequent ReSolve
// only needs dual-simplex pivots to repair primal feasibility — typically a
// handful of pivots instead of a cold two-phase solve. On iteration trouble
// or numerical drift the solver transparently falls back to a cold rebuild,
// so ReSolve is never less correct than Solve.
//
// In lazy mode (SetLazy), inequality rows start inactive: the solver
// optimises over the active subset, evaluates the inactive rows against the
// candidate optimum, and warm-activates only the violated ones — an
// activated row enters with its slack basic and primal-infeasible, which is
// exactly the shape dual simplex repairs. SQPR's planning LPs have
// thousands of availability/acyclicity rows of which only a handful ever
// bind, so the active tableau stays an order of magnitude smaller than the
// full problem.
//
// Solutions returned by ReSolve alias solver-owned buffers: the X slice is
// only valid until the next call on the same DenseSolver. Callers that retain a
// point must copy it. A DenseSolver is not safe for concurrent use; independent
// DenseSolver instances are independent.
type DenseSolver struct {
	prob *Problem

	mAll    int // total constraint rows of the problem
	m       int // active tableau rows
	nStruct int // structural variables
	nSlack  int // inequality rows of the problem (potential slack columns)
	stride  int // allocated row width (worst-case column count)

	// Row reserve: arena headroom for rows appended after Load (cutting
	// planes). The arena is sized for mAllCap rows and nSlackCap slack
	// columns up front, so appending and warm-activating rows never
	// re-strides the tableau.
	reserve   int
	mAllCap   int // mAll + reserve
	nSlackCap int // nSlack at Load + reserve

	n         int // live total columns (structural+slack+artificial)
	nArtStart int // first artificial column

	lazyMode   bool
	activeRows []bool // per original row
	nInactive  int

	rowsBuf []float64   // mAll × stride backing store
	rows    [][]float64 // row views into rowsBuf
	rhs     []float64
	basis   []int
	rowOf   []int // row of each basic variable, -1 when nonbasic
	inBasis []bool
	upper   []float64 // effective bound (0 for fixed variables)
	baseU   []float64 // bound as loaded, used for orientation arithmetic
	flipped []bool
	banned  []bool // excluded from entering (artificials, fixed variables)
	fixVal  []int8 // structural fix state
	d       []float64
	cbuf    []float64 // objective scratch for installCosts
	slackOf []int
	xbuf    []float64 // extraction buffer

	iters    int
	maxIters int
	deadline time.Time
	ctx      context.Context
	warmOnly bool
	bland    bool
	stall    int

	// Incremental lazy-row scanning: varRows is a CSR index from structural
	// variable to the inequality rows it appears in; scanX remembers, per
	// variable, the value at which that variable's rows were last evaluated.
	// A re-solve only re-evaluates rows whose variables moved since their
	// last evaluation (beyond scanEps, which accumulates in scanX so drift
	// cannot creep past the feasibility tolerance unchecked). scanValid
	// marks that every inactive row was satisfied at scanX.
	varRowsStart []int
	varRowsList  []int32
	scanX        []float64
	scanValid    bool
	loadMAll     int   // rows present at Load; later rows always re-scan
	rowMark      []int // round-stamped per-row dedup for the scan
	rowRound     int

	// Gomory cut-generation scratch (see gomory.go).
	gColRow  []int
	gAcc     []float64
	gMark    []int
	gTouched []int
	gTerms   []Term
	gRound   int

	// warm records that the tableau holds a dual-feasible basis from a
	// completed solve, so ReSolve may start with dual simplex.
	warm bool

	// snap is the saved-basis arena of SaveBasis/RestoreBasis. Restoring a
	// saved optimal basis and then only *tightening* bounds keeps the
	// re-solve in pure dual simplex, which is the cheap path; branch-and-
	// bound uses this to jump between subtrees without primal re-solves.
	snap struct {
		valid      bool
		m          int
		n          int
		nArtStart  int
		nInactive  int
		activeRows []bool
		slackOf    []int
		rowsBuf    []float64
		rhs        []float64
		basis      []int
		rowOf      []int
		inBasis    []bool
		upper      []float64
		flipped    []bool
		banned     []bool
		fixVal     []int8
		d          []float64
	}
}

// NewDenseSolver returns an empty solver; call Load before solving.
func NewDenseSolver() *DenseSolver { return &DenseSolver{} }

// SetLazy toggles lazy row activation for subsequent Loads. Must be called
// before Load.
func (s *DenseSolver) SetLazy(on bool) { s.lazyMode = on }

// SetRowReserve reserves arena headroom for n rows appended after Load (see
// AppendRows). Must be called before Load; the reserve applies to every
// subsequent Load until changed.
func (s *DenseSolver) SetRowReserve(n int) {
	if n < 0 {
		n = 0
	}
	s.reserve = n
}

// SpareRowCapacity reports how many more rows AppendRows can register before
// the reserve declared by SetRowReserve is exhausted.
func (s *DenseSolver) SpareRowCapacity() int { return s.mAllCap - s.mAll }

// Load compiles p into the solver's arena, growing it only when p is larger
// than any previously loaded problem. All variables start free and the
// first ReSolve performs a cold solve. The solver keeps a reference to p
// (it does not copy constraint data) and never mutates it.
func (s *DenseSolver) Load(p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.prob = p
	s.warm = false
	s.mAll = len(p.Cons)
	s.m = 0
	s.nStruct = p.NumVars

	s.mAllCap = s.mAll + s.reserve
	s.slackOf = growI(s.slackOf, s.mAllCap)
	s.activeRows = growB(s.activeRows, s.mAllCap)
	s.nSlack = 0
	s.nInactive = 0
	for i := range p.Cons {
		// Slack columns are assigned when a row enters the tableau
		// (rebuild, or warm activation), not up front: the live column
		// count — and with it the cost of every pivot — then scales with
		// the rows actually active, not with the thousands of lazy rows
		// that never bind.
		s.slackOf[i] = -1
		if p.Cons[i].Sense == EQ {
			s.activeRows[i] = true
			continue
		}
		s.nSlack++
		// Only inequality rows may start inactive.
		s.activeRows[i] = !s.lazyMode
		if s.lazyMode {
			s.nInactive++
		}
	}
	s.nSlackCap = s.nSlack + s.reserve
	// Worst case: every row active with a slack plus one artificial each.
	s.stride = p.NumVars + s.nSlackCap + s.mAllCap

	// The dense tableau is by far the largest allocation (gigabytes on
	// batch models); grow it geometrically so a sequence of solves over
	// slightly-growing models reallocates O(log) times instead of paying a
	// fresh multi-gigabyte clear-and-fault on every high-water mark.
	if need := s.mAllCap * s.stride; cap(s.rowsBuf) < need {
		s.rowsBuf = make([]float64, need+need/2)
	}
	s.rowsBuf = s.rowsBuf[:s.mAllCap*s.stride]
	if cap(s.rows) < s.mAllCap {
		s.rows = make([][]float64, s.mAllCap)
	}
	s.rows = s.rows[:s.mAllCap]
	for i := 0; i < s.mAllCap; i++ {
		s.rows[i] = s.rowsBuf[i*s.stride : (i+1)*s.stride]
	}
	s.rhs = growF(s.rhs, s.mAllCap)
	s.basis = growI(s.basis, s.mAllCap)
	s.rowOf = growI(s.rowOf, s.stride)
	s.inBasis = growB(s.inBasis, s.stride)
	s.upper = growF(s.upper, s.stride)
	s.baseU = growF(s.baseU, s.stride)
	s.flipped = growB(s.flipped, s.stride)
	s.banned = growB(s.banned, s.stride)
	s.d = growF(s.d, s.stride)
	s.cbuf = growF(s.cbuf, s.stride)
	s.fixVal = growI8(s.fixVal, p.NumVars)
	for j := range s.fixVal {
		s.fixVal[j] = fixFree
	}
	n := p.NumVars
	if n == 0 {
		n = 1
	}
	s.xbuf = growF(s.xbuf, n)
	s.snap.valid = false

	// Var→row CSR over the inequality rows loaded now; rows appended later
	// (AppendRows) are few and are always re-scanned instead.
	s.loadMAll = s.mAll
	s.scanX = growF(s.scanX, n)
	s.scanValid = false
	s.rowMark = growI(s.rowMark, s.mAllCap)
	for i := range s.rowMark[:s.mAllCap] {
		s.rowMark[i] = 0
	}
	s.rowRound = 0
	s.varRowsStart = growI(s.varRowsStart, p.NumVars+1)
	for j := range s.varRowsStart[:p.NumVars+1] {
		s.varRowsStart[j] = 0
	}
	nnz := 0
	for i := range p.Cons {
		if p.Cons[i].Sense == EQ {
			continue
		}
		for _, t := range p.Cons[i].Terms {
			s.varRowsStart[t.Var+1]++
			nnz++
		}
	}
	for j := 1; j <= p.NumVars; j++ {
		s.varRowsStart[j] += s.varRowsStart[j-1]
	}
	if cap(s.varRowsList) < nnz {
		s.varRowsList = make([]int32, nnz)
	}
	s.varRowsList = s.varRowsList[:nnz]
	// Fill using varRowsStart as the write cursor, then shift it back.
	for i := range p.Cons {
		if p.Cons[i].Sense == EQ {
			continue
		}
		for _, t := range p.Cons[i].Terms {
			s.varRowsList[s.varRowsStart[t.Var]] = int32(i)
			s.varRowsStart[t.Var]++
		}
	}
	for j := p.NumVars; j > 0; j-- {
		s.varRowsStart[j] = s.varRowsStart[j-1]
	}
	s.varRowsStart[0] = 0
	return nil
}

// NumVars returns the structural variable count of the loaded problem.
func (s *DenseSolver) NumVars() int { return s.nStruct }

// Detach drops the solver's reference to the loaded problem and invalidates
// any saved basis, keeping only the raw arenas. Pools of idle solvers call
// this so a recycled solver cannot keep a dead caller's constraint storage
// reachable; the next Load makes the solver usable again.
func (s *DenseSolver) Detach() {
	s.prob = nil
	s.warm = false
	s.snap.valid = false
}

// ActiveRows returns how many constraint rows the tableau currently holds;
// in lazy mode this is typically far below len(Problem.Cons).
func (s *DenseSolver) ActiveRows() int { return s.m }

// SaveBasis snapshots the full tableau state — basis, bounds, fix set,
// orientation, active rows, reduced costs — into a solver-owned arena. One
// snapshot is held at a time; saving again overwrites it. The copy costs
// about as much as a single pivot.
func (s *DenseSolver) SaveBasis() {
	if !s.warm {
		return
	}
	sp := &s.snap
	sp.valid = true
	sp.m = s.m
	sp.n = s.n
	sp.nArtStart = s.nArtStart
	sp.nInactive = s.nInactive
	sp.activeRows = growB(sp.activeRows, s.mAll)
	copy(sp.activeRows, s.activeRows[:s.mAll])
	sp.slackOf = growI(sp.slackOf, s.mAll)
	copy(sp.slackOf, s.slackOf[:s.mAll])
	// Rows are packed at the live column width n, not the arena stride:
	// the copy scales with the tableau actually in use.
	sp.rowsBuf = growF(sp.rowsBuf, s.m*s.n)
	for i := 0; i < s.m; i++ {
		copy(sp.rowsBuf[i*s.n:(i+1)*s.n], s.rows[i][:s.n])
	}
	sp.rhs = growF(sp.rhs, s.m)
	copy(sp.rhs, s.rhs[:s.m])
	sp.basis = growI(sp.basis, s.m)
	copy(sp.basis, s.basis[:s.m])
	sp.rowOf = growI(sp.rowOf, s.n)
	copy(sp.rowOf, s.rowOf[:s.n])
	sp.inBasis = growB(sp.inBasis, s.n)
	copy(sp.inBasis, s.inBasis[:s.n])
	sp.upper = growF(sp.upper, s.n)
	copy(sp.upper, s.upper[:s.n])
	sp.flipped = growB(sp.flipped, s.n)
	copy(sp.flipped, s.flipped[:s.n])
	sp.banned = growB(sp.banned, s.n)
	copy(sp.banned, s.banned[:s.n])
	sp.fixVal = growI8(sp.fixVal, s.nStruct)
	copy(sp.fixVal, s.fixVal[:s.nStruct])
	sp.d = growF(sp.d, s.n)
	copy(sp.d, s.d[:s.n])
}

// RestoreBasis reinstates the snapshot taken by SaveBasis, including its
// fix set and active-row set, and reports whether one was available. The
// caller's view of applied fixes must be reset to the snapshot's.
//
//sqpr:hotpath
func (s *DenseSolver) RestoreBasis() bool {
	sp := &s.snap
	if !sp.valid {
		return false
	}
	oldN := s.n
	s.m = sp.m
	s.n = sp.n
	s.nArtStart = sp.nArtStart
	s.nInactive = sp.nInactive
	s.scanValid = false // the restored point differs from the scanned one
	copy(s.activeRows[:s.mAll], sp.activeRows)
	copy(s.slackOf[:s.mAll], sp.slackOf)
	for i := 0; i < sp.m; i++ {
		row := s.rows[i]
		copy(row[:sp.n], sp.rowsBuf[i*sp.n:(i+1)*sp.n])
		// Pivots after the save may have dirtied columns past the
		// snapshot width; scrub them so a later activation can claim a
		// clean column at the live edge.
		for k := sp.n; k < oldN; k++ {
			row[k] = 0
		}
	}
	copy(s.rhs[:s.m], sp.rhs)
	copy(s.basis[:s.m], sp.basis)
	copy(s.rowOf[:s.n], sp.rowOf)
	copy(s.inBasis[:s.n], sp.inBasis)
	copy(s.upper[:s.n], sp.upper)
	copy(s.flipped[:s.n], sp.flipped)
	copy(s.banned[:s.n], sp.banned)
	copy(s.fixVal[:s.nStruct], sp.fixVal)
	copy(s.d[:s.n], sp.d)
	s.warm = true
	if invariant.Enabled {
		s.checkBasis("RestoreBasis")
	}
	return true
}

// checkBasis verifies the basis/rowOf/inBasis cross-indexing that every
// pivot must preserve: basis[i] names a live column that points back at row
// i, and every column marked basic is named by exactly its row. Checked
// builds call it after basis restores and successful ReSolves; release
// builds compile it out.
func (s *DenseSolver) checkBasis(where string) {
	if !s.warm {
		// No warm-startable tableau: the nStruct==0 shortcut in coldPass
		// answers from the constant rows alone and never builds one, so
		// basis/rowOf/inBasis hold nothing checkable.
		return
	}
	for i := 0; i < s.m; i++ {
		j := s.basis[i]
		if j < 0 || j >= s.n {
			invariant.Failf("lp: %s left basis[%d]=%d outside [0,%d)", where, i, j, s.n)
		}
		if s.rowOf[j] != i {
			invariant.Failf("lp: %s left basis[%d]=%d but rowOf[%d]=%d", where, i, j, j, s.rowOf[j])
		}
		if !s.inBasis[j] {
			invariant.Failf("lp: %s left basis[%d]=%d with inBasis[%d] false", where, i, j, j)
		}
	}
	for j := 0; j < s.n; j++ {
		if s.inBasis[j] && s.basis[s.rowOf[j]] != j {
			invariant.Failf("lp: %s left column %d marked basic but row %d holds %d", where, j, s.rowOf[j], s.basis[s.rowOf[j]])
		}
	}
}

// AppendRows registers constraint rows that the caller appended to the
// loaded Problem's Cons slice since Load (or the previous AppendRows call),
// without a cold rebuild: each new row is given a slack column from the
// reserve declared by SetRowReserve and starts *inactive*, so the next
// ReSolve warm-activates it only if the current optimum violates it — the
// cutting-plane loop of internal/milp appends cover and clique cuts this
// way and repairs them with a handful of dual-simplex pivots. Appended rows
// must be inequalities (LE or GE). The call invalidates any saved basis
// (SaveBasis snapshots taken before an append cannot describe the grown
// problem). Returns the number of rows registered and an error when a row is
// malformed or the reserve is exhausted.
func (s *DenseSolver) AppendRows() (int, error) {
	p := s.prob
	if p == nil {
		return 0, fmt.Errorf("lp: AppendRows before Load")
	}
	added := 0
	for i := s.mAll; i < len(p.Cons); i++ {
		c := &p.Cons[i]
		if c.Sense == EQ {
			return added, fmt.Errorf("lp: appended row %d is an equality", i)
		}
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= s.nStruct {
				return added, fmt.Errorf("lp: appended row %d references variable %d outside [0,%d)", i, t.Var, s.nStruct)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return added, fmt.Errorf("lp: appended row %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return added, fmt.Errorf("lp: appended row %d has non-finite right-hand side", i)
		}
		if s.mAll >= s.mAllCap {
			return added, fmt.Errorf("lp: row reserve exhausted (%d rows)", s.reserve)
		}
		// The row starts inactive; its slack column is assigned on
		// activation, like any other lazy row.
		s.slackOf[s.mAll] = -1
		s.activeRows[s.mAll] = false
		s.nSlack++
		s.mAll++
		s.nInactive++
		added++
	}
	if added > 0 {
		s.snap.valid = false
		s.scanValid = false
	}
	return added, nil
}

// ReducedCost returns the reduced cost of structural variable j at the
// current basis, together with the bound the variable is nonbasic at. The
// value is reported in the solver's minimisation space for the variable's
// *current* orientation: after an Optimal ReSolve it is non-negative, and
// moving j off its bound by t >= 0 (up from 0 when atUpper is false, down
// from its upper bound when true) degrades the objective by at least d·t in
// the LP relaxation — the inequality branch-and-bound uses for reduced-cost
// bound fixing. Basic variables report 0.
//
//sqpr:hotpath
func (s *DenseSolver) ReducedCost(j int) (d float64, atUpper bool) {
	if s.inBasis[j] {
		return 0, s.flipped[j]
	}
	return s.d[j], s.flipped[j]
}

// RowDual returns the dual multiplier of original constraint row i at the
// current (optimal) basis: the sensitivity ∂objective/∂RHS_i in the
// problem's minimisation space. Inactive lazy rows and equality rows (whose
// slack column is not kept) report 0.
//
//sqpr:hotpath
func (s *DenseSolver) RowDual(i int) float64 {
	if i < 0 || i >= s.mAll || !s.activeRows[i] {
		return 0
	}
	slack := s.slackOf[i]
	if slack < 0 {
		return 0
	}
	// d_slack = −y for the built row a·x + sc·s = b; the original-row
	// multiplier is y_orig = −d_slack/sc with sc = +1 (LE) or −1 (GE).
	if s.prob.Cons[i].Sense == GE {
		return s.d[slack]
	}
	return -s.d[slack]
}

// Fix pins structural variable j at 0 (atUpper false) or at its upper bound
// (atUpper true) without recompiling the problem. When the tableau holds a
// warm basis the bound change is applied in place: the column is re-oriented
// if needed and its effective bound collapses to zero, leaving any primal
// infeasibility for the next ReSolve's dual simplex to repair. Fixing at
// the upper bound requires a finite upper bound.
//
//sqpr:hotpath
func (s *DenseSolver) Fix(j int, atUpper bool) {
	want := fixZero
	if atUpper {
		want = fixUpper
	}
	if s.fixVal[j] == want {
		return
	}
	if s.warm {
		// Restore the true bound first so orientation flips use the real
		// width of the variable's range.
		s.upper[j] = s.baseU[j]
		if s.flipped[j] != atUpper {
			if r := s.rowOf[j]; r >= 0 {
				s.flipBasicRow(r)
			} else {
				s.flipColumn(j)
			}
		}
		s.upper[j] = 0
	}
	s.fixVal[j] = want
	s.banned[j] = true
}

// Unfix releases a previously fixed variable back to its full [0, upper]
// range. The variable's current position (whichever bound it was fixed at)
// remains a valid nonbasic point, so no pivoting is needed.
//
//sqpr:hotpath
func (s *DenseSolver) Unfix(j int) {
	if s.fixVal[j] == fixFree {
		return
	}
	s.fixVal[j] = fixFree
	s.banned[j] = false
	if s.warm {
		s.upper[j] = s.baseU[j]
	}
}

// Fixed reports the fix state of variable j: fixed pinned at 0 or its upper
// bound, and free otherwise.
//
//sqpr:hotpath
func (s *DenseSolver) Fixed(j int) (fixed, atUpper bool) {
	return s.fixVal[j] != fixFree, s.fixVal[j] == fixUpper
}

// ReSolve optimises the loaded problem under the current variable fixes.
// From a warm basis it runs bounded-variable dual simplex plus a primal
// clean-up; otherwise (first call, or after a fallback) it performs a cold
// two-phase primal solve over the active rows. Violated inactive rows are
// then activated and repaired until the point satisfies the full problem.
// The returned Solution's X aliases a solver-owned buffer valid until the
// next call. The steady-state warm path performs no heap allocation.
//
//sqpr:hotpath
func (s *DenseSolver) ReSolve(opts Options) Solution {
	s.installOpts(opts)
	coldDone := false
	for {
		var st Status
		if !s.warm {
			st = s.coldPass()
			coldDone = true
		} else {
			st = s.dualIterate()
			if st == Optimal {
				// Dual pivots restored primal feasibility. Bound
				// *relaxations* (Unfix) can leave a released column with a
				// negative reduced cost, so finish with primal pivots; when
				// the basis is already dual feasible this is a no-op.
				st = s.iterate()
			}
		}
		switch st {
		case Optimal:
			x := s.extract()
			if s.nInactive > 0 && s.activateViolated(x) > 0 {
				continue // repair the newly active rows warm
			}
			// The zero-activation scan above certified the inactive rows;
			// only bounds and active rows remain to check.
			feas := s.checkFeasibleActive(x)
			if invariant.Enabled {
				s.checkBasis("ReSolve")
			}
			if !feas && !coldDone {
				// Numerical drift accumulated across pivots: refactorise
				// from scratch. The cold path re-derives everything from
				// the problem data, so drift cannot compound across nodes.
				s.warm = false
				continue
			}
			return Solution{
				Status:    Optimal,
				X:         x,
				Objective: s.prob.Objective(x),
				Feasible:  feas,
				Iters:     s.iters,
			}
		case Infeasible:
			// Dual unbounded or phase 1 stuck: the current bound set admits
			// no feasible point. (Activating more rows can only shrink the
			// feasible region, so inactive rows cannot rescue it.) The
			// tableau stays consistent, so later ReSolves stay warm.
			return Solution{Status: Infeasible, Iters: s.iters}
		case Unbounded:
			if s.nInactive > 0 {
				// The descent ray may be cut off by rows not yet active;
				// bring everything in and restart cold.
				s.activateAll()
				s.warm = false
				coldDone = false
				continue
			}
			return Solution{Status: Unbounded, X: s.extract(), Iters: s.iters}
		default: // IterLimit
			if s.expired() || coldDone || s.warmOnly {
				return Solution{Status: IterLimit, Iters: s.iters}
			}
			// Pivot budget exhausted on the warm path without an external
			// deadline (e.g. a degenerate dual cycle): fall back to a cold
			// solve with a fresh pivot budget on top of what was spent, so
			// the rebuild is not dead on arrival at the same limit.
			s.maxIters += s.iters
			s.warm = false
		}
	}
}

// expired reports whether the deadline or context of the current call has
// lapsed.
//
//sqpr:hotpath
func (s *DenseSolver) expired() bool {
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return true
	}
	return s.ctx != nil && s.ctx.Err() != nil
}

//sqpr:hotpath
func (s *DenseSolver) installOpts(opts Options) {
	s.deadline = opts.Deadline
	s.ctx = opts.Ctx
	s.warmOnly = opts.WarmOnly
	s.maxIters = opts.MaxIters
	if s.maxIters <= 0 {
		s.maxIters = 200 * (s.mAll + s.nStruct + s.nSlack + 10)
	}
	s.iters = 0
	s.bland = false
	s.stall = 0
}

// coldPass rebuilds the tableau from the problem plus current fixes over
// the active row set and runs the two-phase primal simplex. On success the
// tableau is left at an optimal basis and the solver is marked warm.
func (s *DenseSolver) coldPass() Status {
	if s.nStruct == 0 {
		if constRowsFeasible(s.prob) {
			return Optimal
		}
		return Infeasible
	}
	s.rebuild()

	if s.nArtStart < s.n {
		st := s.iterate()
		if st == IterLimit {
			return IterLimit
		}
		if s.phase1Value() > zeroTol*float64(1+s.m) {
			return Infeasible
		}
		s.driveOutArtificials()
		for j := s.nArtStart; j < s.n; j++ {
			s.banned[j] = true
		}
	}

	s.installCosts()
	st := s.iterate()
	if st == Optimal || st == IterLimit {
		// Pin artificials at zero so the dual simplex treats any later
		// drift on redundant rows as a violation to repair.
		for j := s.nArtStart; j < s.n; j++ {
			s.upper[j] = 0
		}
	}
	s.warm = st == Optimal
	return st
}

// activateViolated evaluates the inactive rows at x and warm-activates the
// violated ones; returns how many were activated. After a full first scan
// it runs incrementally: only rows containing a variable that moved since
// that variable's rows were last evaluated (plus any rows appended after
// Load) are re-evaluated — on SQPR's models a node re-solve moves a handful
// of variables while thousands of availability/acyclicity rows stay put.
//
//sqpr:hotpath
func (s *DenseSolver) activateViolated(x []float64) int {
	count := 0
	if !s.scanValid {
		for i := 0; i < s.mAll; i++ {
			if !s.activeRows[i] && s.rowViolated(i, x) {
				s.activateRow(i)
				count++
			}
		}
		copy(s.scanX[:s.nStruct], x[:s.nStruct])
		s.scanValid = true
		return count
	}
	s.rowRound++
	round := s.rowRound
	for j := 0; j < s.nStruct; j++ {
		d := x[j] - s.scanX[j]
		if d < scanEps && d > -scanEps {
			continue
		}
		s.scanX[j] = x[j]
		for _, ri := range s.varRowsList[s.varRowsStart[j]:s.varRowsStart[j+1]] {
			i := int(ri)
			if s.rowMark[i] == round || s.activeRows[i] {
				s.rowMark[i] = round
				continue
			}
			s.rowMark[i] = round
			if s.rowViolated(i, x) {
				s.activateRow(i)
				count++
			}
		}
	}
	// Rows appended after Load are outside the CSR index: always evaluate.
	for i := s.loadMAll; i < s.mAll; i++ {
		if !s.activeRows[i] && s.rowViolated(i, x) {
			s.activateRow(i)
			count++
		}
	}
	return count
}

// rowViolated evaluates inequality row i at x against its tolerance.
//
//sqpr:hotpath
func (s *DenseSolver) rowViolated(i int, x []float64) bool {
	c := &s.prob.Cons[i]
	lhs := Eval(c.Terms, x)
	tol := FeasTol * (1 + math.Abs(c.RHS))
	switch c.Sense {
	case LE:
		return lhs > c.RHS+tol
	case GE:
		return lhs < c.RHS-tol
	}
	return false
}

// checkFeasibleActive verifies bounds and the *active* rows of the problem
// at x. Together with a zero-activation scan of the inactive rows it
// certifies full feasibility without re-evaluating the (far larger)
// inactive set a second time.
//
//sqpr:hotpath
func (s *DenseSolver) checkFeasibleActive(x []float64) bool {
	p := s.prob
	for j := 0; j < p.NumVars; j++ {
		if x[j] < -FeasTol || x[j] > p.upper(j)+FeasTol {
			return false
		}
	}
	for i := 0; i < s.mAll; i++ {
		if !s.activeRows[i] {
			continue
		}
		c := &p.Cons[i]
		lhs := Eval(c.Terms, x)
		tol := FeasTol * (1 + math.Abs(c.RHS))
		switch c.Sense {
		case LE:
			if lhs > c.RHS+tol {
				return false
			}
		case GE:
			if lhs < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// activateAll brings every inactive row in (used before an Unbounded
// restart; the subsequent pass is cold, so a plain marking suffices).
func (s *DenseSolver) activateAll() {
	for i := range s.activeRows[:s.mAll] {
		s.activeRows[i] = true
	}
	s.nInactive = 0
}

// activateRow appends inactive inequality row i to the warm tableau: the
// row is given a fresh slack column at the live edge of the tableau,
// expressed in the current orientation, basic variables are eliminated, and
// the slack becomes basic — primal-infeasible exactly when the row is
// violated, which the next dual-simplex pass repairs. Reduced costs are
// untouched: a zero-cost basic slack changes no other column's reduced
// cost, so dual feasibility survives activation.
//
//sqpr:hotpath
func (s *DenseSolver) activateRow(i int) {
	c := &s.prob.Cons[i]
	// Claim column s.n for the slack and scrub any stale state there (the
	// slot may have been used before a basis restore rewound the tableau).
	s.slackOf[i] = s.n
	for r := 0; r < s.m; r++ {
		s.rows[r][s.n] = 0
	}
	s.upper[s.n] = math.Inf(1)
	s.baseU[s.n] = math.Inf(1)
	s.flipped[s.n] = false
	s.inBasis[s.n] = false
	s.rowOf[s.n] = -1
	s.d[s.n] = 0
	s.n++

	slot := s.m
	row := s.rows[slot]
	for k := 0; k < s.n; k++ {
		row[k] = 0
	}
	sign := 1.0
	if c.Sense == GE {
		// a·x − s = b  ⇔  −a·x + s = −b keeps the slack coefficient +1.
		sign = -1
	}
	rhs := sign * c.RHS
	for _, tm := range c.Terms {
		a := sign * tm.Coef
		j := tm.Var
		if s.flipped[j] {
			// Column j is in complement orientation x̄ = u − x.
			rhs -= a * s.baseU[j]
			row[j] -= a
		} else {
			row[j] += a
		}
	}
	// Eliminate basic variables so the row is expressed over the current
	// nonbasic space.
	for j := 0; j < s.n; j++ {
		f := row[j]
		if f == 0 || !s.inBasis[j] {
			continue
		}
		r2 := s.rows[s.rowOf[j]]
		for k := 0; k < s.n; k++ {
			row[k] -= f * r2[k]
		}
		row[j] = 0
		rhs -= f * s.rhs[s.rowOf[j]]
	}
	slack := s.slackOf[i]
	row[slack] = 1
	s.rhs[slot] = rhs
	s.basis[slot] = slack
	s.banned[slack] = false
	s.inBasis[slack] = true
	s.rowOf[slack] = slot
	s.d[slack] = 0
	s.activeRows[i] = true
	s.m = slot + 1
	s.nInactive--
}

// dualIterate runs bounded-variable dual simplex pivots from a dual-feasible
// basis until primal feasibility (optimality), proven infeasibility, or a
// budget is exhausted. Two violation forms are handled: a basic variable
// below zero enters directly; one above a positive upper bound is first
// re-oriented to its complement (flipBasicRow) so it, too, exits at zero. A
// basic variable above a zero-width bound (fixed variables, artificials)
// pivots out directly — both of its bounds coincide at zero, so no
// re-orientation is needed or wanted.
//
//sqpr:hotpath
func (s *DenseSolver) dualIterate() Status {
	const dualTol = 1e-7
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if s.iters%16 == 0 && s.expired() {
			return IterLimit
		}

		// Leaving row: most violating basic variable.
		r, above := -1, false
		viol := dualTol
		for i := 0; i < s.m; i++ {
			if v := -s.rhs[i]; v > viol {
				viol, r, above = v, i, false
			}
			if ub := s.upper[s.basis[i]]; !math.IsInf(ub, 1) {
				if v := s.rhs[i] - ub; v > viol {
					viol, r, above = v, i, true
				}
			}
		}
		if r < 0 {
			return Optimal
		}
		if above && s.upper[s.basis[r]] > 0 {
			// Re-orient so the violation becomes "below zero" and the
			// leaving variable exits at what is now its zero bound.
			s.flipBasicRow(r)
			above = false
		}

		// Entering column: dual ratio test. For the below-zero form the
		// candidates have a negative row coefficient; for the zero-width
		// above form, a positive one.
		row := s.rows[r]
		enter := -1
		best := math.Inf(1)
		for j := 0; j < s.n; j++ {
			if s.inBasis[j] || s.banned[j] {
				continue
			}
			a := row[j]
			if !above {
				a = -a
			}
			if a <= pivotTol {
				continue
			}
			ratio := s.d[j] / a
			if ratio < best-ratioTol ||
				(ratio < best+ratioTol && enter >= 0 && math.Abs(row[j]) > math.Abs(row[enter])) {
				best = ratio
				enter = j
			}
		}
		if enter < 0 {
			return Infeasible
		}
		s.pivot(r, enter)
		s.iters++
	}
}

// extract reconstructs structural variable values in the original
// orientation, writing into the solver's reusable buffer.
//
//sqpr:hotpath
func (s *DenseSolver) extract() []float64 {
	x := s.xbuf[:s.nStruct]
	for j := range x {
		if s.flipped[j] {
			x[j] = s.baseU[j]
		} else {
			x[j] = 0
		}
	}
	for i, b := range s.basis[:s.m] {
		if b >= s.nStruct {
			continue
		}
		v := s.rhs[i]
		if s.flipped[b] {
			v = s.baseU[b] - v
		}
		x[b] = v
	}
	for j := range x {
		v := x[j]
		if v < 0 && v > -1e-9 {
			v = 0
		}
		if u := s.baseU[j]; !math.IsInf(u, 1) && v > u && v < u+1e-9 {
			v = u
		}
		x[j] = v
	}
	return x
}

// rebuild constructs the initial tableau over the active rows: slack
// columns give LE rows an identity start where possible, artificials cover
// the rest, fixed variables are folded in as zero-width columns (at-upper
// fixes in complement orientation), and the phase-1 reduced costs are
// installed. Slacks of inactive rows are banned from entering.
//
//sqpr:hotpath
func (s *DenseSolver) rebuild() {
	p := s.prob
	n := s.nStruct
	s.scanValid = false // cold rebuilds move the point arbitrarily
	for j := 0; j < s.stride; j++ {
		s.upper[j] = math.Inf(1)
		s.baseU[j] = math.Inf(1)
		s.flipped[j] = false
		s.banned[j] = false
		s.inBasis[j] = false
		s.rowOf[j] = -1
		s.d[j] = 0
	}
	for j := 0; j < n; j++ {
		u := p.upper(j)
		s.baseU[j] = u
		switch s.fixVal[j] {
		case fixFree:
			s.upper[j] = u
		case fixZero:
			s.upper[j] = 0
			s.banned[j] = true
		case fixUpper:
			s.upper[j] = 0
			s.banned[j] = true
			s.flipped[j] = true
		}
	}
	// Assign slack columns densely over the active inequality rows; rows
	// activated warm later take fresh columns at the then-current s.n.
	nSlackActive := 0
	for i := 0; i < s.mAll; i++ {
		if !s.activeRows[i] || s.prob.Cons[i].Sense == EQ {
			s.slackOf[i] = -1
			continue
		}
		s.slackOf[i] = n + nSlackActive
		nSlackActive++
	}

	slot := 0
	nArt := 0
	artBase := n + nSlackActive
	// Zero the rows only out to the worst-case live width of this rebuild
	// (slacks assigned above plus at most one artificial per row); columns
	// claimed later by warm activations are scrubbed at claim time.
	zlim := artBase + s.mAll
	if zlim > s.stride {
		zlim = s.stride
	}
	for i := range p.Cons {
		if !s.activeRows[i] {
			continue
		}
		c := &p.Cons[i]
		row := s.rows[slot]
		for k := 0; k < zlim; k++ {
			row[k] = 0
		}
		rhs := c.RHS
		for _, tm := range c.Terms {
			if s.fixVal[tm.Var] == fixUpper {
				// x = u − x̄ with x̄ pinned at 0: substitute in complement
				// orientation so the fixed value lands on the RHS.
				rhs -= tm.Coef * s.baseU[tm.Var]
				row[tm.Var] -= tm.Coef
			} else {
				row[tm.Var] += tm.Coef
			}
		}
		slackCoef := 0.0
		switch c.Sense {
		case LE:
			slackCoef = 1.0
		case GE:
			slackCoef = -1.0
		}
		if rhs < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			slackCoef = -slackCoef
			rhs = -rhs
		}
		if s.slackOf[i] >= 0 {
			row[s.slackOf[i]] = slackCoef
		}
		s.rhs[slot] = rhs
		if s.slackOf[i] >= 0 && slackCoef > 0 {
			s.basis[slot] = s.slackOf[i]
		} else {
			art := artBase + nArt
			nArt++
			row[art] = 1.0
			s.basis[slot] = art
		}
		slot++
	}
	s.m = slot
	s.n = artBase + nArt
	s.nArtStart = artBase
	for i, b := range s.basis[:s.m] {
		s.inBasis[b] = true
		s.rowOf[b] = i
	}

	// Phase-1 reduced costs: minimise the sum of artificials. With the
	// artificials basic, d_j = −Σ_{artificial rows i} T_ij.
	for i, b := range s.basis[:s.m] {
		if b < s.nArtStart {
			continue
		}
		row := s.rows[i]
		for j := 0; j < s.n; j++ {
			s.d[j] -= row[j]
		}
	}
	for j := s.nArtStart; j < s.n; j++ {
		s.d[j]++
	}
}

// phase1Value returns the current sum of artificial variable values.
func (s *DenseSolver) phase1Value() float64 {
	var sum float64
	for i, b := range s.basis[:s.m] {
		if b >= s.nArtStart {
			sum += s.rhs[i]
		}
	}
	return sum
}

// driveOutArtificials pivots zero-valued basic artificials onto structural
// columns where possible, leaving redundant rows with a basic artificial
// pinned at zero. Banned (fixed) columns are never pivoted in: a fixed
// variable entering the basis could later drift off its pinned value.
func (s *DenseSolver) driveOutArtificials() {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.nArtStart {
			continue
		}
		row := s.rows[i]
		pivot := -1
		for j := 0; j < s.nArtStart; j++ {
			if !s.inBasis[j] && !s.banned[j] && math.Abs(row[j]) > 1e-7 {
				pivot = j
				break
			}
		}
		if pivot >= 0 {
			s.pivot(i, pivot)
		}
	}
}

// installCosts recomputes the reduced-cost row for the problem objective in
// the current basis and orientation.
func (s *DenseSolver) installCosts() {
	c := s.cbuf[:s.n]
	for j := range c {
		c[j] = 0
	}
	for j := 0; j < s.nStruct; j++ {
		cj := s.prob.cost(j)
		if s.flipped[j] {
			cj = -cj
		}
		c[j] = cj
	}
	copy(s.d[:s.n], c)
	for i, b := range s.basis[:s.m] {
		cb := c[b]
		if cb == 0 {
			continue
		}
		row := s.rows[i]
		for j := 0; j < s.n; j++ {
			s.d[j] -= cb * row[j]
		}
	}
	for _, b := range s.basis[:s.m] {
		s.d[b] = 0
	}
}

// iterate runs primal simplex iterations until optimality, unboundedness or
// a budget is exhausted.
//
//sqpr:hotpath
func (s *DenseSolver) iterate() Status {
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if s.iters%16 == 0 {
			if !s.deadline.IsZero() && time.Now().After(s.deadline) {
				return IterLimit
			}
			if s.ctx != nil && s.ctx.Err() != nil {
				return IterLimit
			}
		}
		j := s.chooseEntering()
		if j < 0 {
			return Optimal
		}
		st := s.step(j)
		if st != 0 {
			return st
		}
		s.iters++
	}
}

// chooseEntering selects a nonbasic column with negative reduced cost, using
// Dantzig's rule normally and Bland's rule once degeneracy stalls.
//
//sqpr:hotpath
func (s *DenseSolver) chooseEntering() int {
	if s.bland {
		for j := 0; j < s.n; j++ {
			if !s.inBasis[j] && !s.banned[j] && s.d[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < s.n; j++ {
		if s.inBasis[j] || s.banned[j] {
			continue
		}
		if s.d[j] < bestVal {
			bestVal = s.d[j]
			best = j
		}
	}
	return best
}

// step performs the ratio test and either flips the entering variable to
// its opposite bound or pivots it into the basis. Returns 0 on success,
// Unbounded if the entering direction is unbounded.
//
//sqpr:hotpath
func (s *DenseSolver) step(j int) Status {
	tmax := s.upper[j]
	leave := -1
	leaveAtUpper := false
	for i := 0; i < s.m; i++ {
		a := s.rows[i][j]
		if a > pivotTol {
			lim := s.rhs[i] / a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(s.rows[leave][j])) {
				tmax = lim
				leave = i
				leaveAtUpper = false
			}
		} else if a < -pivotTol {
			ub := s.upper[s.basis[i]]
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - s.rhs[i]) / -a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(s.rows[leave][j])) {
				tmax = lim
				leave = i
				leaveAtUpper = true
			}
		}
	}
	if leave < 0 {
		if math.IsInf(tmax, 1) {
			return Unbounded
		}
		// Bound flip: the entering variable moves straight to its upper
		// bound; re-orient it so it is nonbasic at zero again.
		s.flipColumn(j)
		s.noteProgress(tmax)
		return 0
	}
	if tmax < ratioTol {
		s.stall++
		if s.stall > 5*(s.m+10) {
			s.bland = true
		}
	} else {
		s.noteProgress(tmax)
	}
	if leaveAtUpper && s.upper[s.basis[leave]] > 0 {
		// Re-orient the leaving basic variable so it exits at zero. A
		// zero-width column (fixed variable, pinned artificial) needs no
		// re-orientation — both of its bounds coincide at zero — and for a
		// fixed variable the orientation *is* the fix-at-upper semantics,
		// so flipping it would silently move the pinned value.
		s.flipBasicRow(leave)
	}
	s.pivot(leave, j)
	return 0
}

//sqpr:hotpath
func (s *DenseSolver) noteProgress(step float64) {
	if step > ratioTol {
		s.stall = 0
	}
}

// flipColumn substitutes x_j = u_j − x̄_j for a nonbasic variable with a
// finite upper bound, moving the current point accordingly.
//
//sqpr:hotpath
func (s *DenseSolver) flipColumn(j int) {
	u := s.upper[j]
	for i := 0; i < s.m; i++ {
		a := s.rows[i][j]
		if a != 0 {
			s.rhs[i] -= a * u
			s.rows[i][j] = -a
		}
	}
	s.d[j] = -s.d[j]
	s.flipped[j] = !s.flipped[j]
}

// flipBasicRow re-orients the basic variable of row r (x → u − x), negating
// the row so the variable's identity coefficient stays +1.
//
//sqpr:hotpath
func (s *DenseSolver) flipBasicRow(r int) {
	b := s.basis[r]
	u := s.upper[b]
	row := s.rows[r]
	for j := 0; j < s.n; j++ {
		row[j] = -row[j]
	}
	row[b] = 1
	s.rhs[r] = u - s.rhs[r]
	s.flipped[b] = !s.flipped[b]
}

// pivot makes column j basic in row r by Gaussian elimination of the
// tableau, right-hand side and reduced-cost row.
//
//sqpr:hotpath
func (s *DenseSolver) pivot(r, j int) {
	rowR := s.rows[r]
	piv := rowR[j]
	if piv != 1 {
		inv := 1 / piv
		for k := 0; k < s.n; k++ {
			rowR[k] *= inv
		}
		rowR[j] = 1 // guard against roundoff
		s.rhs[r] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.rows[i][j]
		if f == 0 {
			continue
		}
		rowI := s.rows[i]
		for k := 0; k < s.n; k++ {
			rowI[k] -= f * rowR[k]
		}
		rowI[j] = 0
		s.rhs[i] -= f * s.rhs[r]
		if s.rhs[i] < 0 && s.rhs[i] > -1e-11 {
			s.rhs[i] = 0
		}
	}
	if f := s.d[j]; f != 0 {
		for k := 0; k < s.n; k++ {
			s.d[k] -= f * rowR[k]
		}
		s.d[j] = 0
	}
	old := s.basis[r]
	s.inBasis[old] = false
	s.rowOf[old] = -1
	s.basis[r] = j
	s.inBasis[j] = true
	s.rowOf[j] = r
}

// Gomory mixed-integer (GMI) cut generation from the current optimal basis.
//
// For a basis row whose basic variable is integer-constrained but sits at a
// fractional value b̄ = ⌊b̄⌋ + f0, the GMI inequality over the nonbasic
// variables (all at 0 in the tableau's current orientation)
//
//	Σ_int  g_j·x_j + Σ_cont h_j·x_j >= f0,
//	g_j = f_j            if f_j <= f0,   f_j = frac(ā_j)
//	    = f0(1-f_j)/(1-f0) otherwise
//	h_j = ā_j            if ā_j >= 0
//	    = f0(-ā_j)/(1-f0) otherwise
//
// is valid for every mixed-integer point. The solver re-expresses the cut
// over the original structural variables — undoing bound flips and
// substituting slack definitions — so the caller can pool it like any other
// row. Generation runs at the branch-and-bound root only: with no variable
// fixes in place, the emitted rows are globally valid.

// Numerical guard rails for cut generation.
const (
	gmiMinFrac    = 0.02  // basic value must be at least this fractional
	gmiMaxTerms   = 200   // skip cuts denser than this
	gmiMaxDynamic = 1e7   // max |coef| ratio within one cut
	gmiDropTol    = 1e-11 // relative magnitude below which terms are dropped
)

// GomoryCuts derives up to max GMI cuts from the current basis, which must
// come from an Optimal ReSolve with no variable fixes applied. isInt
// reports, per structural variable, whether the model constrains it to
// integer values. Each cut is delivered to emit as structural-space terms
// with a GE sense (terms alias solver scratch; emit must copy). Returns the
// number of cuts emitted.
func (s *DenseSolver) GomoryCuts(isInt []bool, max int, emit func(terms []Term, rhs float64)) int {
	if !s.warm || max <= 0 || len(isInt) < s.nStruct {
		return 0
	}
	for j := 0; j < s.nStruct; j++ {
		if s.fixVal[j] != fixFree {
			return 0 // node-local fixes would make the cuts non-global
		}
	}
	// Reverse map: tableau column of a slack -> its original row.
	s.gColRow = growI(s.gColRow, s.n)
	for j := range s.gColRow[:s.n] {
		s.gColRow[j] = -1
	}
	for r := 0; r < s.mAll; r++ {
		if sl := s.slackOf[r]; sl >= 0 && s.activeRows[r] && sl < s.n {
			s.gColRow[sl] = r
		}
	}
	s.gAcc = growF(s.gAcc, s.nStruct)
	s.gMark = growI(s.gMark, s.nStruct)
	for j := range s.gMark[:s.nStruct] {
		s.gMark[j] = 0
	}
	s.gTerms = s.gTerms[:0]

	emitted := 0
	for i := 0; i < s.m && emitted < max; i++ {
		b := s.basis[i]
		if b >= s.nStruct || !isInt[b] {
			continue
		}
		f0 := s.rhs[i] - math.Floor(s.rhs[i])
		if f0 < gmiMinFrac || f0 > 1-gmiMinFrac {
			continue
		}
		if s.gomoryFromRow(i, f0, isInt, emit) {
			emitted++
		}
	}
	return emitted
}

// gomoryFromRow builds and emits one GMI cut from basis row i; reports
// whether a cut was emitted.
func (s *DenseSolver) gomoryFromRow(i int, f0 float64, isInt []bool, emit func([]Term, float64)) bool {
	row := s.rows[i]
	ratio := f0 / (1 - f0)
	s.gRound++
	round := s.gRound
	touched := s.gTouched[:0]
	rhs := f0

	// acc accumulates structural-space coefficients of the GE cut.
	add := func(j int, c float64) {
		if s.gMark[j] != round {
			s.gMark[j] = round
			s.gAcc[j] = 0
			touched = append(touched, j)
		}
		s.gAcc[j] += c
	}

	ok := true
	for j := 0; j < s.n && ok; j++ {
		if s.inBasis[j] {
			continue
		}
		a := row[j]
		if a == 0 {
			continue
		}
		switch {
		case j < s.nStruct && isInt[j]:
			// Integer nonbasic (possibly in complement orientation; the
			// complement of an integer variable is integer).
			f := a - math.Floor(a)
			g := f
			if f > f0 {
				g = ratio * (1 - f)
			}
			if g < 1e-12 {
				continue
			}
			if s.flipped[j] {
				// g·x̄ = g·(u − x): constant to the RHS, negated term.
				u := s.baseU[j]
				if math.IsInf(u, 1) {
					ok = false
					break
				}
				rhs -= g * u
				add(j, -g)
			} else {
				add(j, g)
			}
		case j < s.nStruct:
			// Continuous structural nonbasic.
			h := a
			if a < 0 {
				h = ratio * -a
			}
			if h < 1e-12 {
				continue
			}
			if s.flipped[j] {
				u := s.baseU[j]
				if math.IsInf(u, 1) {
					ok = false
					break
				}
				rhs -= h * u
				add(j, -h)
			} else {
				add(j, h)
			}
		default:
			// Slack (continuous, >= 0) or artificial column.
			if s.upper[j] == 0 {
				continue // pinned artificial: identically zero
			}
			r := s.gColRow[j]
			if r < 0 {
				ok = false // untracked column; give up on this row
				break
			}
			h := a
			if a < 0 {
				h = ratio * -a
			}
			if h < 1e-12 {
				continue
			}
			c := &s.prob.Cons[r]
			if c.Sense == GE {
				// Built as −a·x + s = −b: s = a·x − b.
				rhs += h * c.RHS
				for _, t := range c.Terms {
					add(t.Var, h*t.Coef)
				}
			} else {
				// a·x + s = b: s = b − a·x.
				rhs -= h * c.RHS
				for _, t := range c.Terms {
					add(t.Var, -h*t.Coef)
				}
			}
		}
	}
	s.gTouched = touched
	if !ok {
		return false
	}

	// Assemble, with dynamic-range and density guards; tiny coefficients
	// are dropped with a conservative RHS adjustment (for a GE row, a
	// dropped c>0 term weakens the RHS by c·u).
	maxAbs := 0.0
	for _, j := range touched {
		if v := math.Abs(s.gAcc[j]); v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return false
	}
	s.gTerms = s.gTerms[:0]
	for _, j := range touched {
		c := s.gAcc[j]
		if math.Abs(c) <= gmiDropTol*maxAbs {
			if c > 0 {
				u := s.prob.upper(j)
				if math.IsInf(u, 1) {
					return false
				}
				rhs -= c * u
			}
			continue
		}
		if math.Abs(c) < maxAbs/gmiMaxDynamic {
			return false
		}
		s.gTerms = append(s.gTerms, Term{Var: j, Coef: c})
	}
	if len(s.gTerms) == 0 || len(s.gTerms) > gmiMaxTerms {
		return false
	}
	emit(s.gTerms, rhs)
	return true
}
