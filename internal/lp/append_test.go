package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestAppendRowsWarm verifies that a cut row appended to a warm basis is
// activated and repaired by dual simplex, matching a cold solve of the
// extended problem.
func TestAppendRowsWarm(t *testing.T) {
	// max x0 + x1 (min −x0 − x1), x in [0,1]^2, x0 + x1 <= 1.5.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{-1, -1},
		Upper:   []float64{1, 1},
		Cons:    []Constraint{{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1.5}},
	}
	s := NewSolver()
	s.SetRowReserve(4)
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	sol := s.ReSolve(Options{})
	if sol.Status != Optimal || math.Abs(sol.Objective-(-1.5)) > 1e-9 {
		t.Fatalf("base solve: %v obj=%v", sol.Status, sol.Objective)
	}
	if got := s.SpareRowCapacity(); got != 4 {
		t.Fatalf("SpareRowCapacity = %d want 4", got)
	}

	// Append the "cut" x0 + x1 <= 1 and re-solve warm.
	p.Cons = append(p.Cons, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1})
	added, err := s.AppendRows()
	if err != nil || added != 1 {
		t.Fatalf("AppendRows = (%d, %v)", added, err)
	}
	sol = s.ReSolve(Options{})
	if sol.Status != Optimal || !sol.Feasible || math.Abs(sol.Objective-(-1)) > 1e-9 {
		t.Fatalf("after cut: %v obj=%v feas=%v", sol.Status, sol.Objective, sol.Feasible)
	}
	if sol.X[0]+sol.X[1] > 1+1e-9 {
		t.Fatalf("cut violated: %v", sol.X)
	}
}

// TestAppendRowsRandomMatchesCold appends random valid rows to warm solvers
// and cross-checks every re-solve against a cold solve of the same problem.
func TestAppendRowsRandomMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		p := &Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Cost[j] = rng.Float64()*4 - 2
			p.Upper[j] = 1
		}
		for i := 0; i < 2+rng.Intn(4); i++ {
			terms := make([]Term, 0, 4)
			for k := 0; k < 2+rng.Intn(3); k++ {
				terms = append(terms, Term{Var: rng.Intn(n), Coef: rng.Float64() * 2})
			}
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: LE, RHS: 0.5 + rng.Float64()*2})
		}
		s := NewSolver()
		s.SetRowReserve(6)
		if err := s.Load(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol := s.ReSolve(Options{}); sol.Status != Optimal {
			t.Fatalf("trial %d: base status %v", trial, sol.Status)
		}
		for round := 0; round < 3; round++ {
			terms := make([]Term, 0, 3)
			for k := 0; k < 1+rng.Intn(3); k++ {
				terms = append(terms, Term{Var: rng.Intn(n), Coef: rng.Float64() * 2})
			}
			sense := LE
			rhs := 0.3 + rng.Float64()
			if rng.Intn(3) == 0 {
				sense = GE
				rhs = rng.Float64() * 0.5
			}
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: sense, RHS: rhs})
			if _, err := s.AppendRows(); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			warm := s.ReSolve(Options{})
			cold := Solve(p, Options{})
			if warm.Status != cold.Status {
				t.Fatalf("trial %d round %d: warm %v vs cold %v", trial, round, warm.Status, cold.Status)
			}
			if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d round %d: warm obj %v vs cold %v", trial, round, warm.Objective, cold.Objective)
			}
			if warm.Status == Infeasible {
				break // further appends cannot restore feasibility
			}
		}
	}
}

// TestReducedCostSign checks the documented orientation of ReducedCost: at
// an optimum every nonbasic variable has a non-negative reduced cost, and
// moving off the bound degrades the objective accordingly.
func TestReducedCostSign(t *testing.T) {
	// min −2x0 − x1 s.t. x0 + x1 <= 1, x in [0,1]^2. Optimum x0=1, x1=0.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{-2, -1},
		Upper:   []float64{1, 1},
		Cons:    []Constraint{{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1}},
	}
	s := NewSolver()
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	sol := s.ReSolve(Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	for j := 0; j < 2; j++ {
		if d, _ := s.ReducedCost(j); d < -1e-9 {
			t.Fatalf("negative reduced cost %v on var %d at optimum", d, j)
		}
	}

	// Row-free problem, so the basis is unique: min 3x0 − 2x1, x in [0,1]^2
	// → x0 nonbasic at 0 with d=3, x1 nonbasic at its upper bound with d=2.
	p2 := &Problem{NumVars: 2, Cost: []float64{3, -2}, Upper: []float64{1, 1}}
	s2 := NewSolver()
	if err := s2.Load(p2); err != nil {
		t.Fatal(err)
	}
	if sol := s2.ReSolve(Options{}); sol.Status != Optimal || math.Abs(sol.Objective-(-2)) > 1e-9 {
		t.Fatalf("row-free solve: %+v", sol)
	}
	if d, atUpper := s2.ReducedCost(0); atUpper || math.Abs(d-3) > 1e-9 {
		t.Fatalf("ReducedCost(x0) = (%v, %v) want (3, false)", d, atUpper)
	}
	if d, atUpper := s2.ReducedCost(1); !atUpper || math.Abs(d-2) > 1e-9 {
		t.Fatalf("ReducedCost(x1) = (%v, %v) want (2, true)", d, atUpper)
	}
}

// TestRowDualSensitivity checks RowDual against a finite-difference
// perturbation of the right-hand side.
func TestRowDualSensitivity(t *testing.T) {
	// min −x0 s.t. x0 <= 5 (row), x0 unbounded above: optimum −5, dual −1.
	p := &Problem{
		NumVars: 1,
		Cost:    []float64{-1},
		Cons:    []Constraint{{Terms: []Term{{0, 1}}, Sense: LE, RHS: 5}},
	}
	s := NewSolver()
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	if sol := s.ReSolve(Options{}); sol.Status != Optimal || math.Abs(sol.Objective-(-5)) > 1e-9 {
		t.Fatalf("solve: %+v", sol)
	}
	if y := s.RowDual(0); math.Abs(y-(-1)) > 1e-9 {
		t.Fatalf("RowDual = %v want -1", y)
	}

	// GE variant: min x0 s.t. x0 >= 3 → dual +1.
	p2 := &Problem{
		NumVars: 1,
		Cost:    []float64{1},
		Cons:    []Constraint{{Terms: []Term{{0, 1}}, Sense: GE, RHS: 3}},
	}
	s2 := NewSolver()
	if err := s2.Load(p2); err != nil {
		t.Fatal(err)
	}
	if sol := s2.ReSolve(Options{}); sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("solve: %+v", sol)
	}
	if y := s2.RowDual(0); math.Abs(y-1) > 1e-9 {
		t.Fatalf("GE RowDual = %v want 1", y)
	}
}
