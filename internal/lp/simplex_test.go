package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEmptyProblem(t *testing.T) {
	sol := Solve(&Problem{}, Options{})
	if sol.Status != Optimal || !sol.Feasible {
		t.Fatalf("empty problem: got %v feasible=%v", sol.Status, sol.Feasible)
	}
}

func TestSimpleMaxViaMin(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6, x,y>=0  → x=4,y=0, obj 12.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{-3, -2},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 4},
			{Terms: []Term{{0, 1}, {1, 3}}, Sense: LE, RHS: 6},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !approx(sol.Objective, -12, 1e-6) {
		t.Fatalf("objective %v want -12 (x=%v)", sol.Objective, sol.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x+y s.t. x+y>=2, x-y=0 → x=y=1, obj 2.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 2},
			{Terms: []Term{{0, 1}, {1, -1}}, Sense: EQ, RHS: 0},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !approx(sol.Objective, 2, 1e-6) || !approx(sol.X[0], 1, 1e-6) {
		t.Fatalf("got obj=%v x=%v", sol.Objective, sol.X)
	}
}

func TestUpperBoundsRespected(t *testing.T) {
	// max x+y with x<=0.5, y<=0.25, x+y<=2 → obj 0.75.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{-1, -1},
		Upper:   []float64{0.5, 0.25},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 2},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal || !approx(sol.Objective, -0.75, 1e-6) {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Objective, sol.X)
	}
}

func TestUpperBoundBindingViaConstraint(t *testing.T) {
	// min -x s.t. x<=3 (bound), x>=1. Optimal x=3.
	p := &Problem{
		NumVars: 1,
		Cost:    []float64{-1},
		Upper:   []float64{3},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 1},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal || !approx(sol.X[0], 3, 1e-6) {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x>=2 with x<=1 upper bound.
	p := &Problem{
		NumVars: 1,
		Upper:   []float64{1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 2},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Infeasible {
		t.Fatalf("status=%v want infeasible", sol.Status)
	}
}

func TestInfeasibleContradictoryEqualities(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 1},
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 2},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Infeasible {
		t.Fatalf("status=%v want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x free above.
	p := &Problem{
		NumVars: 1,
		Cost:    []float64{-1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 0},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Unbounded {
		t.Fatalf("status=%v want unbounded", sol.Status)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Klee–Minty-flavoured degenerate rows should still terminate.
	p := &Problem{
		NumVars: 3,
		Cost:    []float64{-100, -10, -1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{0, 20}, {1, 1}}, Sense: LE, RHS: 100},
			{Terms: []Term{{0, 200}, {1, 20}, {2, 1}}, Sense: LE, RHS: 10000},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal || !approx(sol.Objective, -10000, 1e-4) {
		t.Fatalf("status=%v obj=%v", sol.Status, sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2  ⇔  x >= 2; min x → 2.
	p := &Problem{
		NumVars: 1,
		Cost:    []float64{1},
		Cons: []Constraint{
			{Terms: []Term{{0, -1}}, Sense: LE, RHS: -2},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal || !approx(sol.X[0], 2, 1e-6) {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate equalities create a redundant row; phase 1 must cope.
	p := &Problem{
		NumVars: 2,
		Cost:    []float64{1, 2},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 3},
			{Terms: []Term{{0, 2}, {1, 2}}, Sense: EQ, RHS: 6},
		},
	}
	sol := Solve(p, Options{})
	if sol.Status != Optimal || !approx(sol.Objective, 3, 1e-6) {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Objective, sol.X)
	}
}

func TestCheckFeasible(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		Upper:   []float64{1, 1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1.5},
		},
	}
	if !p.CheckFeasible([]float64{1, 0.5}) {
		t.Fatal("expected feasible")
	}
	if p.CheckFeasible([]float64{1, 1}) {
		t.Fatal("expected infeasible (row)")
	}
	if p.CheckFeasible([]float64{-1, 0}) {
		t.Fatal("expected infeasible (bound)")
	}
}

func TestValidateRejectsBadIndices(t *testing.T) {
	p := &Problem{NumVars: 1, Cons: []Constraint{{Terms: []Term{{5, 1}}, Sense: LE, RHS: 0}}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestRandomLPsFeasibleOptimal cross-checks the solver on random dense LPs:
// any point the solver declares optimal must be feasible, and its objective
// must not be worse than a cloud of random feasible points.
func TestRandomLPsFeasibleOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		mrows := 1 + rng.Intn(6)
		p := &Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.Cost[j] = rng.Float64()*4 - 2
			p.Upper[j] = 0.5 + rng.Float64()*3
		}
		for i := 0; i < mrows; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				terms = append(terms, Term{j, rng.Float64()*2 - 0.5})
			}
			// Right-hand sides chosen so the origin is feasible: b >= 0 for LE.
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: LE, RHS: rng.Float64() * 3})
		}
		sol := Solve(p, Options{})
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if !sol.Feasible || !p.CheckFeasible(sol.X) {
			t.Fatalf("trial %d: optimal point infeasible: %v", trial, sol.X)
		}
		// Sample feasible points; none may beat the reported optimum.
		for k := 0; k < 50; k++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * p.Upper[j]
			}
			if p.CheckFeasible(x) && p.Objective(x) < sol.Objective-1e-6 {
				t.Fatalf("trial %d: random point %v beats optimum (%v < %v)", trial, x, p.Objective(x), sol.Objective)
			}
		}
	}
}

// TestQuickTransportLP property-tests a family of tiny transportation LPs
// whose optimum is known in closed form: route everything over the cheaper
// of two arcs subject to its capacity.
func TestQuickTransportLP(t *testing.T) {
	f := func(c1u, c2u uint8, demU uint8) bool {
		c1 := 1 + float64(c1u%7)
		c2 := 1 + float64(c2u%7)
		dem := 1 + float64(demU%5)
		cap1 := 3.0
		p := &Problem{
			NumVars: 2,
			Cost:    []float64{c1, c2},
			Upper:   []float64{cap1, math.Inf(1)},
			Cons: []Constraint{
				{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: dem},
			},
		}
		sol := Solve(p, Options{})
		if sol.Status != Optimal {
			return false
		}
		var want float64
		if c1 <= c2 {
			x1 := math.Min(cap1, dem)
			want = c1*x1 + c2*(dem-x1)
		} else {
			want = c2 * dem
		}
		return approx(sol.Objective, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
