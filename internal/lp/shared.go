package lp

import "math"

// Numerical tolerances for the simplex method, shared by the sparse Solver
// and the dense reference DenseSolver.
const (
	costTol  = 1e-9 // reduced-cost optimality tolerance
	pivotTol = 1e-9 // minimum admissible pivot magnitude
	ratioTol = 1e-9 // ratio-test tie tolerance
	zeroTol  = 1e-9 // phase-1 objective zero test
)

// Fix targets for structural variables (see Solver.Fix).
const (
	fixFree  int8 = iota // variable ranges over [0, upper]
	fixZero              // variable pinned at 0
	fixUpper             // variable pinned at its upper bound
)

// scanEps is the per-variable movement below which a variable's rows are
// not re-evaluated by the incremental lazy-row scan. Unchecked drift per
// variable is bounded by 2·scanEps, which a row's coefficient sum keeps
// well inside the FeasTol-scaled row tolerances.
const scanEps = 1e-9

// Solve optimises the problem with the given options. It never mutates p.
// It is a thin compatibility wrapper over the stateful Solver: each call
// compiles p into a fresh solver and runs a cold two-phase primal solve.
// Callers that solve the same problem repeatedly under changing variable
// fixes should hold a Solver and use ReSolve instead.
func Solve(p *Problem, opts Options) Solution {
	if p.NumVars == 0 {
		if p.Validate() != nil {
			return Solution{Status: Infeasible}
		}
		// Constant problem: feasible iff every row admits the zero vector.
		if constRowsFeasible(p) {
			return Solution{Status: Optimal, X: []float64{}, Feasible: true}
		}
		return Solution{Status: Infeasible}
	}
	var s Solver
	if err := s.Load(p); err != nil {
		// Structural errors are programming bugs of the caller; surface
		// them as infeasibility rather than panicking inside the solver.
		return Solution{Status: Infeasible}
	}
	sol := s.ReSolve(opts)
	if sol.X != nil {
		// Detach the point from the solver's arena; the solver dies here
		// but the contract is that Solve's X is caller-owned.
		sol.X = append([]float64(nil), sol.X...)
	}
	return sol
}

// constRowsFeasible reports whether a zero-variable problem is feasible.
func constRowsFeasible(p *Problem) bool {
	for _, c := range p.Cons {
		switch c.Sense {
		case LE:
			if 0 > c.RHS+FeasTol {
				return false
			}
		case GE:
			if 0 < c.RHS-FeasTol {
				return false
			}
		case EQ:
			if math.Abs(c.RHS) > FeasTol {
				return false
			}
		}
	}
	return true
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}
