package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomBoundedLP builds a random dense LP with finite bounds whose origin
// is feasible for the LE rows (non-negative RHS); a sprinkle of GE and EQ
// rows exercises artificials and lazy activation.
func randomBoundedLP(rng *rand.Rand, n, mrows int) *Problem {
	p := &Problem{NumVars: n, Cost: make([]float64, n), Upper: make([]float64, n)}
	for j := 0; j < n; j++ {
		p.Cost[j] = rng.Float64()*4 - 2
		p.Upper[j] = 0.5 + rng.Float64()*2.5
	}
	for i := 0; i < mrows; i++ {
		terms := make([]Term, 0, n)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				terms = append(terms, Term{j, rng.Float64()*2 - 0.5})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{rng.Intn(n), 1})
		}
		switch rng.Intn(5) {
		case 0: // GE row, loose enough to intersect the box often
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: GE, RHS: -rng.Float64()})
		case 1: // EQ row through a random box point, so it is satisfiable
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * p.Upper[j] * 0.5
			}
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: EQ, RHS: Eval(terms, x)})
		default:
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: LE, RHS: rng.Float64() * 3})
		}
	}
	return p
}

// fixedEquivalent builds a standalone Problem expressing the same fix set:
// at-zero fixes shrink the upper bound to 0, at-upper fixes pin the value
// with an equality row.
func fixedEquivalent(p *Problem, fixes map[int]bool) *Problem {
	q := &Problem{NumVars: p.NumVars}
	q.Cost = append([]float64(nil), p.Cost...)
	q.Upper = append([]float64(nil), p.Upper...)
	for _, c := range p.Cons {
		q.Cons = append(q.Cons, Constraint{
			Terms: append([]Term(nil), c.Terms...),
			Sense: c.Sense,
			RHS:   c.RHS,
		})
	}
	for j, atUpper := range fixes {
		if atUpper {
			q.Cons = append(q.Cons, Constraint{Terms: []Term{{j, 1}}, Sense: EQ, RHS: p.Upper[j]})
		} else {
			q.Upper[j] = 0
		}
	}
	return q
}

// TestWarmResolveMatchesColdSolve drives eager and lazy Solvers through
// randomized fix/unfix sequences and cross-checks every warm re-solve
// against a cold solve of an equivalent standalone problem.
func TestWarmResolveMatchesColdSolve(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 80; trial++ {
			n := 3 + rng.Intn(6)
			p := randomBoundedLP(rng, n, 1+rng.Intn(5))
			s := NewSolver()
			s.SetLazy(lazy)
			if err := s.Load(p); err != nil {
				t.Fatalf("lazy=%v trial %d: load: %v", lazy, trial, err)
			}
			first := s.ReSolve(Options{})
			ref := Solve(p, Options{})
			if first.Status != ref.Status {
				t.Fatalf("lazy=%v trial %d: cold status %v vs Solve %v", lazy, trial, first.Status, ref.Status)
			}

			fixes := make(map[int]bool)
			for step := 0; step < 12; step++ {
				j := rng.Intn(n)
				switch rng.Intn(3) {
				case 0:
					s.Fix(j, false)
					fixes[j] = false
				case 1:
					s.Fix(j, true)
					fixes[j] = true
				case 2:
					s.Unfix(j)
					delete(fixes, j)
				}
				warm := s.ReSolve(Options{})
				want := Solve(fixedEquivalent(p, fixes), Options{})
				if warm.Status != want.Status {
					t.Fatalf("lazy=%v trial %d step %d (fixes %v): warm status %v, want %v",
						lazy, trial, step, fixes, warm.Status, want.Status)
				}
				if warm.Status != Optimal {
					continue
				}
				if math.Abs(warm.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
					t.Fatalf("lazy=%v trial %d step %d (fixes %v): warm objective %v, want %v (x=%v)",
						lazy, trial, step, fixes, warm.Objective, want.Objective, warm.X)
				}
				if !p.CheckFeasible(warm.X) {
					t.Fatalf("lazy=%v trial %d step %d: warm point infeasible: %v", lazy, trial, step, warm.X)
				}
				for j, atUpper := range fixes {
					wantV := 0.0
					if atUpper {
						wantV = p.Upper[j]
					}
					if math.Abs(warm.X[j]-wantV) > 1e-6 {
						t.Fatalf("lazy=%v trial %d step %d: fix on var %d not respected: x=%v want %v",
							lazy, trial, step, j, warm.X[j], wantV)
					}
				}
			}
		}
	}
}

// TestSaveRestoreBasisRoundTrip verifies that restoring a saved basis
// reproduces the saved optimum and that tightenings from the restored basis
// match cold solves — the branch-and-bound subtree-jump pattern.
func TestSaveRestoreBasisRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		p := randomBoundedLP(rng, n, 2+rng.Intn(4))
		s := NewSolver()
		s.SetLazy(trial%2 == 0)
		if err := s.Load(p); err != nil {
			t.Fatal(err)
		}
		base := s.ReSolve(Options{})
		if base.Status != Optimal {
			continue
		}
		baseObj := base.Objective
		s.SaveBasis()
		for round := 0; round < 4; round++ {
			fixes := map[int]bool{}
			for k := 0; k <= rng.Intn(3); k++ {
				fixes[rng.Intn(n)] = rng.Intn(2) == 0
			}
			if !s.RestoreBasis() {
				t.Fatalf("trial %d: RestoreBasis failed", trial)
			}
			for j, atUpper := range fixes {
				s.Fix(j, atUpper)
			}
			got := s.ReSolve(Options{})
			want := Solve(fixedEquivalent(p, fixes), Options{})
			if got.Status != want.Status {
				t.Fatalf("trial %d round %d (fixes %v): status %v want %v", trial, round, fixes, got.Status, want.Status)
			}
			if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
				t.Fatalf("trial %d round %d (fixes %v): obj %v want %v", trial, round, fixes, got.Objective, want.Objective)
			}
		}
		if !s.RestoreBasis() {
			t.Fatalf("trial %d: final RestoreBasis failed", trial)
		}
		back := s.ReSolve(Options{})
		if back.Status != Optimal || math.Abs(back.Objective-baseObj) > 1e-6*(1+math.Abs(baseObj)) {
			t.Fatalf("trial %d: restored optimum %v (%v), want %v", trial, back.Objective, back.Status, baseObj)
		}
	}
}

// TestUnfixRestoresOriginalOptimum fixes every variable, releases them all,
// and expects the original optimum back.
func TestUnfixRestoresOriginalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		p := randomBoundedLP(rng, n, 3)
		base := Solve(p, Options{})
		if base.Status != Optimal {
			continue
		}
		s := NewSolver()
		if err := s.Load(p); err != nil {
			t.Fatal(err)
		}
		s.ReSolve(Options{})
		for j := 0; j < n; j++ {
			s.Fix(j, rng.Intn(2) == 0)
			s.ReSolve(Options{})
		}
		for j := 0; j < n; j++ {
			s.Unfix(j)
		}
		back := s.ReSolve(Options{})
		if back.Status != Optimal {
			t.Fatalf("trial %d: status %v after unfix-all", trial, back.Status)
		}
		if math.Abs(back.Objective-base.Objective) > 1e-6*(1+math.Abs(base.Objective)) {
			t.Fatalf("trial %d: objective %v after unfix-all, want %v", trial, back.Objective, base.Objective)
		}
	}
}

// TestReSolveSteadyStateAllocationFree asserts the warm re-solve path does
// not allocate: the acceptance criterion behind BenchmarkLPResolve.
func TestReSolveSteadyStateAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randomBoundedLP(rng, 12, 8)
	s := NewSolver()
	s.SetLazy(true) // the production branch-and-bound configuration
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	if sol := s.ReSolve(Options{}); sol.Status != Optimal {
		t.Fatalf("cold solve: %v", sol.Status)
	}
	j := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.Fix(j%p.NumVars, j%2 == 0)
		s.ReSolve(Options{})
		s.Unfix(j % p.NumVars)
		s.ReSolve(Options{})
		j++
	})
	if allocs > 0 {
		t.Fatalf("warm ReSolve allocated %v times per run, want 0", allocs)
	}
}

// TestConcurrentIndependentSolvers exercises separate Solver instances from
// separate goroutines; run with -race to verify independence.
func TestConcurrentIndependentSolvers(t *testing.T) {
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			p := randomBoundedLP(rng, 8, 5)
			s := NewSolver()
			s.SetLazy(seed%2 == 0)
			if err := s.Load(p); err != nil {
				done <- err
				return
			}
			s.ReSolve(Options{})
			for i := 0; i < 40; i++ {
				j := rng.Intn(p.NumVars)
				s.Fix(j, rng.Intn(2) == 0)
				s.ReSolve(Options{})
				s.Unfix(j)
				s.ReSolve(Options{})
			}
			done <- nil
		}(int64(w + 1))
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
