package lp

import (
	"math"

	"sqpr/internal/invariant"
)

// FactorStats reports the factorization activity of a Solver since Load:
// how often the basis was refactorized (and how many of those were forced
// by numerical drift rather than the schedule), how many product-form eta
// updates were appended between refactorizations, the longest eta file
// observed, and the fill-in ratio (LU nonzeros over basis nonzeros) of the
// most recent factorization.
type FactorStats struct {
	Refactors     int     // basis factorizations performed
	DriftRebuilds int     // refactorizations/rebuilds forced by numerical drift
	EtaAppends    int     // product-form updates appended between refactorizations
	PeakEtas      int     // longest eta file reached
	FillRatio     float64 // nnz(L+U) / nnz(B) at the last refactorization
}

// Merge folds o into f: counters add, high-water marks take the maximum.
func (f *FactorStats) Merge(o FactorStats) {
	f.Refactors += o.Refactors
	f.DriftRebuilds += o.DriftRebuilds
	f.EtaAppends += o.EtaAppends
	if o.PeakEtas > f.PeakEtas {
		f.PeakEtas = o.PeakEtas
	}
	if o.FillRatio > f.FillRatio {
		f.FillRatio = o.FillRatio
	}
}

// luFactor is a sparse LU factorization of the basis matrix B, produced by
// left-looking Gilbert–Peierls elimination with partial pivoting. Rows are
// addressed by basis *slot*; the factorization assigns each slot a pivot
// *position* (elimination order). L is unit-lower-triangular in position
// order with its off-diagonal entries stored per column against row slots;
// U is upper-triangular with off-diagonal entries stored per column against
// row positions and its diagonal kept separately.
type luFactor struct {
	m      int
	lStart []int32
	lRow   []int32 // row slots of L's off-diagonal entries
	lVal   []float64
	uStart []int32
	uRow   []int32 // row positions of U's off-diagonal entries
	uVal   []float64
	uDiag  []float64
	rpos   []int32 // position -> pivot row slot
	rinv   []int32 // row slot -> position (-1 while unpivoted)
	cpos   []int32 // position -> basis slot whose column pivoted there
	nnzB   int
	nnzLU  int

	// Factorization scratch: a stamped dense work column over row slots and
	// a min-heap of pivotal positions that orders the sparse lower solve.
	w      []float64
	wmark  []int32
	wtouch []int32
	wstamp int32
	heap   []int32
	hseen  []int32
	cnt    []int32 // counting-sort scratch for the column preorder
	order  []int32 // slot processing order (ascending active column nnz)
	nnzCol []int32
}

// init sizes every arena for a basis of up to mcap rows, so factorizations
// inside the warm solve loop allocate nothing once the high-water mark is
// reached.
func (f *luFactor) init(mcap int) {
	f.lStart = growI32(f.lStart, mcap+1)
	f.uStart = growI32(f.uStart, mcap+1)
	f.uDiag = growF(f.uDiag, mcap)
	f.rpos = growI32(f.rpos, mcap)
	f.rinv = growI32(f.rinv, mcap)
	f.cpos = growI32(f.cpos, mcap)
	f.w = growF(f.w, mcap)
	f.wmark = growI32(f.wmark, mcap)
	for i := range f.wmark[:mcap] {
		f.wmark[i] = 0
	}
	f.wstamp = 0
	f.wtouch = growI32(f.wtouch, mcap)[:0]
	f.heap = growI32(f.heap, mcap)[:0]
	f.hseen = growI32(f.hseen, mcap)
	for i := range f.hseen[:mcap] {
		f.hseen[i] = 0
	}
	f.cnt = growI32(f.cnt, mcap+2)
	f.order = growI32(f.order, mcap)
	f.nnzCol = growI32(f.nnzCol, mcap)
	ecap := 8*mcap + 64
	if cap(f.lRow) < ecap {
		f.lRow = make([]int32, 0, ecap)
		f.lVal = make([]float64, 0, ecap)
		f.uRow = make([]int32, 0, ecap)
		f.uVal = make([]float64, 0, ecap)
	}
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uRow = f.uRow[:0]
	f.uVal = f.uVal[:0]
}

// etaFile is the product-form update sequence since the last refactorize:
// B = B₀·E₁···E_k, each eta a pivot column (r, piv, sparse off-pivot
// entries). A pivot of column a in row r appends the eta built from
// α = B⁻¹a; re-orienting a basic variable appends a negation eta (piv −1,
// no entries).
type etaFile struct {
	count int
	r     []int32
	piv   []float64
	start []int32 // len count+1, offsets into idx/val
	idx   []int32
	val   []float64
}

func (e *etaFile) init(mcap int) {
	ecap := defaultRefactorInterval * 2
	if cap(e.r) < ecap {
		e.r = make([]int32, 0, ecap)
		e.piv = make([]float64, 0, ecap)
		e.start = make([]int32, 1, ecap+1)
	}
	ncap := 4*mcap + 64
	if cap(e.idx) < ncap {
		e.idx = make([]int32, 0, ncap)
		e.val = make([]float64, 0, ncap)
	}
	e.reset()
}

func (e *etaFile) reset() {
	e.count = 0
	e.r = e.r[:0]
	e.piv = e.piv[:0]
	e.start = e.start[:1]
	e.start[0] = 0
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

// appendPivot records the eta of a basis change: column with FTRAN image
// alpha replaces the basic variable of row r.
//
//sqpr:hotpath
func (e *etaFile) appendPivot(r int, alpha []float64, m int) {
	// The eta arenas are preallocated by init and reused across solves.
	e.r = append(e.r, int32(r))     //sqpr:amortized
	e.piv = append(e.piv, alpha[r]) //sqpr:amortized
	for i := 0; i < m; i++ {
		if i != r && alpha[i] != 0 {
			e.idx = append(e.idx, int32(i)) //sqpr:amortized
			e.val = append(e.val, alpha[i]) //sqpr:amortized
		}
	}
	e.start = append(e.start, int32(len(e.idx))) //sqpr:amortized
	e.count++
}

// appendNeg records the negation eta of re-orienting the basic variable of
// row r (its basis column is negated: E is the identity with −1 at (r,r)).
//
//sqpr:hotpath
func (e *etaFile) appendNeg(r int) {
	e.r = append(e.r, int32(r))                 //sqpr:amortized
	e.piv = append(e.piv, -1)                   //sqpr:amortized
	e.start = append(e.start, e.start[e.count]) //sqpr:amortized
	e.count++
}

// applyF applies the eta sequence forward: v ← E_k⁻¹···E₁⁻¹ v.
//
//sqpr:hotpath
func (e *etaFile) applyF(v []float64) {
	for k := 0; k < e.count; k++ {
		r := int(e.r[k])
		vr := v[r]
		if vr == 0 {
			continue
		}
		vr /= e.piv[k]
		v[r] = vr
		for t := e.start[k]; t < e.start[k+1]; t++ {
			v[e.idx[t]] -= e.val[t] * vr
		}
	}
}

// applyB applies the transposed etas in reverse: v ← E₁⁻ᵀ···E_k⁻ᵀ v.
//
//sqpr:hotpath
func (e *etaFile) applyB(v []float64) {
	for k := e.count - 1; k >= 0; k-- {
		sum := 0.0
		for t := e.start[k]; t < e.start[k+1]; t++ {
			sum += e.val[t] * v[e.idx[t]]
		}
		r := int(e.r[k])
		v[r] = (v[r] - sum) / e.piv[k]
	}
}

// ftran solves B·z = v in place (v indexed by slot): LU solve against the
// last factorization, then the eta updates forward.
//
//sqpr:hotpath
func (s *Solver) ftran(v []float64) {
	s.luSolveF(v)
	s.eta.applyF(v)
}

// btran solves Bᵀ·z = v in place: eta updates in reverse, then the
// transposed LU solve.
//
//sqpr:hotpath
func (s *Solver) btran(v []float64) {
	s.eta.applyB(v)
	s.luSolveB(v)
}

// luSolveF solves (B₀)z = v in place against the LU factors: forward
// substitution through L in position order, backward through U, then the
// column permutation scatters position-space results back to slots.
//
//sqpr:hotpath
func (s *Solver) luSolveF(v []float64) {
	f := &s.lu
	m := f.m
	for t := 0; t < m; t++ {
		vv := v[f.rpos[t]]
		if vv == 0 {
			continue
		}
		for e := f.lStart[t]; e < f.lStart[t+1]; e++ {
			v[f.lRow[e]] -= f.lVal[e] * vv
		}
	}
	w := s.work
	for t := m - 1; t >= 0; t-- {
		vv := v[f.rpos[t]] / f.uDiag[t]
		w[t] = vv
		if vv != 0 {
			for e := f.uStart[t]; e < f.uStart[t+1]; e++ {
				v[f.rpos[f.uRow[e]]] -= f.uVal[e] * vv
			}
		}
	}
	for t := 0; t < m; t++ {
		v[f.cpos[t]] = w[t]
	}
}

// luSolveB solves (B₀)ᵀz = v in place: forward through Uᵀ in position
// order, backward through Lᵀ, with the row permutation scattering back to
// slots.
//
//sqpr:hotpath
func (s *Solver) luSolveB(v []float64) {
	f := &s.lu
	m := f.m
	w := s.work
	for t := 0; t < m; t++ {
		w[t] = v[f.cpos[t]]
	}
	for t := 0; t < m; t++ {
		vv := w[t]
		for e := f.uStart[t]; e < f.uStart[t+1]; e++ {
			vv -= f.uVal[e] * w[f.uRow[e]]
		}
		w[t] = vv / f.uDiag[t]
	}
	for t := m - 1; t >= 0; t-- {
		vv := w[t]
		for e := f.lStart[t]; e < f.lStart[t+1]; e++ {
			vv -= f.lVal[e] * w[f.rinv[f.lRow[e]]]
		}
		w[t] = vv
	}
	for t := 0; t < m; t++ {
		v[f.rpos[t]] = w[t]
	}
}

// activeColNNZ counts the entries of basis column col over the active rows.
//
//sqpr:hotpath
func (s *Solver) activeColNNZ(col int) int {
	if col >= s.nStruct {
		return 1
	}
	n := 0
	for t := s.ccStart[col]; t < s.ccStart[col+1]; t++ {
		if s.rowSlot[s.ccRow[t]] >= 0 {
			n++
		}
	}
	return n
}

// refactorize rebuilds the LU factors of the current basis from the problem
// data, resets the eta file, and refreshes the basic solution and reduced
// costs exactly. Reports false when the basis is numerically singular — the
// caller falls back to a cold rebuild, whose slack/artificial start basis
// is diagonal and always factorizes. Markowitz-style fill control comes
// from two choices: columns are eliminated in ascending active-nonzero
// order, and partial pivoting picks the largest-magnitude candidate row.
func (s *Solver) refactorize() bool {
	f := &s.lu
	m := s.m
	f.m = m
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uRow = f.uRow[:0]
	f.uVal = f.uVal[:0]
	f.lStart[0] = 0
	f.uStart[0] = 0
	for t := 0; t < m; t++ {
		f.rinv[t] = -1
	}
	if f.wstamp > math.MaxInt32-int32(m)-4 {
		for i := range f.wmark[:len(f.wmark)] {
			f.wmark[i] = 0
		}
		for i := range f.hseen[:len(f.hseen)] {
			f.hseen[i] = 0
		}
		f.wstamp = 0
	}

	// Column preorder: counting sort of the basis columns by active nnz.
	nnzB := 0
	for t := 0; t < m; t++ {
		c := s.activeColNNZ(s.basis[t])
		if c > m {
			c = m
		}
		f.nnzCol[t] = int32(c)
		nnzB += c
	}
	for k := 0; k <= m+1; k++ {
		f.cnt[k] = 0
	}
	for t := 0; t < m; t++ {
		f.cnt[f.nnzCol[t]+1]++
	}
	for k := 1; k <= m+1; k++ {
		f.cnt[k] += f.cnt[k-1]
	}
	for t := 0; t < m; t++ {
		f.order[f.cnt[f.nnzCol[t]]] = int32(t)
		f.cnt[f.nnzCol[t]]++
	}
	f.nnzB = nnzB

	for k := 0; k < m; k++ {
		srcSlot := int(f.order[k])
		col := s.basis[srcSlot]
		f.wstamp++
		st := f.wstamp
		f.wtouch = f.wtouch[:0]
		f.heap = f.heap[:0]
		// Scatter the basis column into the work vector, seeding the heap
		// with already-pivotal row positions.
		if col < s.nStruct {
			sign := 1.0
			if s.flipped[col] {
				sign = -1
			}
			for e := s.ccStart[col]; e < s.ccStart[col+1]; e++ {
				slot := s.rowSlot[s.ccRow[e]]
				if slot < 0 {
					continue
				}
				f.scatterEntry(slot, sign*s.ccCoef[e], st)
			}
		} else {
			aux := col - s.nStruct
			f.scatterEntry(s.auxSlot[aux], s.auxCoef[aux], st)
		}
		// Sparse lower solve: pop pivotal positions in ascending order
		// (ascending positions is a topological order for L), emitting U
		// entries and pushing fill-in as it appears.
		for len(f.heap) > 0 {
			t := f.heapPop()
			v := f.w[f.rpos[t]]
			if v == 0 {
				continue
			}
			f.uRow = append(f.uRow, t) //sqpr:amortized
			f.uVal = append(f.uVal, v) //sqpr:amortized
			for e := f.lStart[t]; e < f.lStart[t+1]; e++ {
				f.scatterEntry(f.lRow[e], 0, st)
				f.w[f.lRow[e]] -= f.lVal[e] * v
			}
		}
		// Partial pivoting over the unpivoted residual.
		best, bestAbs := int32(-1), 0.0
		for _, slot := range f.wtouch {
			if f.rinv[slot] < 0 {
				if a := math.Abs(f.w[slot]); a > bestAbs {
					bestAbs, best = a, slot
				}
			}
		}
		if bestAbs <= luSingularTol {
			s.factorValid = false
			return false
		}
		piv := f.w[best]
		f.uDiag[k] = piv
		for _, slot := range f.wtouch {
			if f.rinv[slot] < 0 && slot != best {
				if v := f.w[slot]; v != 0 {
					f.lRow = append(f.lRow, slot)  //sqpr:amortized
					f.lVal = append(f.lVal, v/piv) //sqpr:amortized
				}
			}
		}
		f.rpos[k] = best
		f.rinv[best] = int32(k)
		f.cpos[k] = int32(srcSlot)
		f.lStart[k+1] = int32(len(f.lRow))
		f.uStart[k+1] = int32(len(f.uRow))
	}
	f.nnzLU = len(f.lRow) + len(f.uRow) + m

	s.eta.reset()
	s.factorValid = true
	s.stats.Refactors++
	if nnzB > 0 {
		s.stats.FillRatio = float64(f.nnzLU) / float64(nnzB)
	} else {
		s.stats.FillRatio = 1
	}
	s.ftranXB()
	s.computeDuals()
	if invariant.Enabled {
		s.checkResidual("refactorize")
	}
	return true
}

// scatterEntry marks slot live in the stamped work vector (zero-filling on
// first touch) and seeds the elimination heap when the slot is already
// pivotal, then adds v.
//
//sqpr:hotpath
func (f *luFactor) scatterEntry(slot int32, v float64, st int32) {
	if f.wmark[slot] != st {
		f.wmark[slot] = st
		f.w[slot] = 0
		f.wtouch = append(f.wtouch, slot) //sqpr:amortized
		if p := f.rinv[slot]; p >= 0 && f.hseen[p] != st {
			f.hseen[p] = st
			f.heapPush(p)
		}
	}
	f.w[slot] += v
}

//sqpr:hotpath
func (f *luFactor) heapPush(p int32) {
	f.heap = append(f.heap, p) //sqpr:amortized
	i := len(f.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if f.heap[parent] <= f.heap[i] {
			break
		}
		f.heap[parent], f.heap[i] = f.heap[i], f.heap[parent]
		i = parent
	}
}

//sqpr:hotpath
func (f *luFactor) heapPop() int32 {
	top := f.heap[0]
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	i := 0
	//sqpr:noctx bounded sift-down over the heap height
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && f.heap[l] < f.heap[small] {
			small = l
		}
		if r < last && f.heap[r] < f.heap[small] {
			small = r
		}
		if small == i {
			break
		}
		f.heap[i], f.heap[small] = f.heap[small], f.heap[i]
		i = small
	}
	return top
}

// costOf returns the objective coefficient of column j under the current
// orientation and solve phase.
//
//sqpr:hotpath
func (s *Solver) costOf(j int) float64 {
	if s.phase1 {
		if j >= s.nStruct && s.auxIsArt[j-s.nStruct] {
			return 1
		}
		return 0
	}
	if j >= s.nStruct {
		return 0
	}
	c := s.prob.cost(j)
	if s.flipped[j] {
		return -c
	}
	return c
}

// colDot returns a_jᵉᶠᶠ·y over the active rows for column j under the
// current orientation.
//
//sqpr:hotpath
func (s *Solver) colDot(j int, y []float64) float64 {
	if j >= s.nStruct {
		aux := j - s.nStruct
		return s.auxCoef[aux] * y[s.auxSlot[aux]]
	}
	sum := 0.0
	for e := s.ccStart[j]; e < s.ccStart[j+1]; e++ {
		if slot := s.rowSlot[s.ccRow[e]]; slot >= 0 {
			sum += s.ccCoef[e] * y[slot]
		}
	}
	if s.flipped[j] {
		return -sum
	}
	return sum
}

// computeDuals recomputes every reduced cost exactly from the current
// factors: y = B⁻ᵀ·c_B by one BTRAN, then d_j = c_j − y·a_j per nonbasic
// column. Runs at every refactorize so incremental d updates cannot drift
// for more than one refactor interval.
//
//sqpr:hotpath
func (s *Solver) computeDuals() {
	m := s.m
	y := s.rho
	for t := 0; t < m; t++ {
		y[t] = s.costOf(s.basis[t])
	}
	s.btran(y)
	for j := 0; j < s.n; j++ {
		if s.inBasis[j] {
			s.d[j] = 0
			continue
		}
		s.d[j] = s.costOf(j) - s.colDot(j, y)
	}
}

// checkResidual verifies ‖B·xB − beff‖∞ against the factorization residual
// tolerance; called by refactorize in checked builds, right after xB was
// recomputed through the fresh factors.
func (s *Solver) checkResidual(where string) {
	m := s.m
	res := make([]float64, m)
	scale := 1.0
	for t := 0; t < m; t++ {
		res[t] = -s.beff[t]
		if a := math.Abs(s.beff[t]); a > scale {
			scale = a
		}
	}
	for t := 0; t < m; t++ {
		v := s.xB[t]
		if v == 0 {
			continue
		}
		col := s.basis[t]
		if col < s.nStruct {
			sign := 1.0
			if s.flipped[col] {
				sign = -1
			}
			for e := s.ccStart[col]; e < s.ccStart[col+1]; e++ {
				if slot := s.rowSlot[s.ccRow[e]]; slot >= 0 {
					res[slot] += sign * s.ccCoef[e] * v
				}
			}
		} else {
			aux := col - s.nStruct
			res[s.auxSlot[aux]] += s.auxCoef[aux] * v
		}
	}
	for t := 0; t < m; t++ {
		if math.Abs(res[t]) > residualTol*scale {
			invariant.Failf("lp: %s left factorization residual %.3e at slot %d (tol %.1e, scale %.3e)",
				where, res[t], t, residualTol, scale)
		}
	}
}
