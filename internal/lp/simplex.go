package lp

import (
	"math"
	"time"
)

// Numerical tolerances for the simplex method.
const (
	costTol  = 1e-9 // reduced-cost optimality tolerance
	pivotTol = 1e-9 // minimum admissible pivot magnitude
	ratioTol = 1e-9 // ratio-test tie tolerance
	zeroTol  = 1e-9 // phase-1 objective zero test
)

// Solve optimises the problem with the given options. It never mutates p.
// It is a thin compatibility wrapper over the stateful Solver: each call
// compiles p into a fresh solver and runs a cold two-phase primal solve.
// Callers that solve the same problem repeatedly under changing variable
// fixes should hold a Solver and use ReSolve instead.
func Solve(p *Problem, opts Options) Solution {
	if p.NumVars == 0 {
		if p.Validate() != nil {
			return Solution{Status: Infeasible}
		}
		// Constant problem: feasible iff every row admits the zero vector.
		if constRowsFeasible(p) {
			return Solution{Status: Optimal, X: []float64{}, Feasible: true}
		}
		return Solution{Status: Infeasible}
	}
	var s Solver
	if err := s.Load(p); err != nil {
		// Structural errors are programming bugs of the caller; surface
		// them as infeasibility rather than panicking inside the solver.
		return Solution{Status: Infeasible}
	}
	sol := s.ReSolve(opts)
	if sol.X != nil {
		// Detach the point from the solver's arena; the solver dies here
		// but the contract is that Solve's X is caller-owned.
		sol.X = append([]float64(nil), sol.X...)
	}
	return sol
}

// constRowsFeasible reports whether a zero-variable problem is feasible.
func constRowsFeasible(p *Problem) bool {
	for _, c := range p.Cons {
		switch c.Sense {
		case LE:
			if 0 > c.RHS+FeasTol {
				return false
			}
		case GE:
			if 0 < c.RHS-FeasTol {
				return false
			}
		case EQ:
			if math.Abs(c.RHS) > FeasTol {
				return false
			}
		}
	}
	return true
}

// phase1Value returns the current sum of artificial variable values.
func (s *Solver) phase1Value() float64 {
	var sum float64
	for i, b := range s.basis[:s.m] {
		if b >= s.nArtStart {
			sum += s.rhs[i]
		}
	}
	return sum
}

// driveOutArtificials pivots zero-valued basic artificials onto structural
// columns where possible, leaving redundant rows with a basic artificial
// pinned at zero. Banned (fixed) columns are never pivoted in: a fixed
// variable entering the basis could later drift off its pinned value.
func (s *Solver) driveOutArtificials() {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.nArtStart {
			continue
		}
		row := s.rows[i]
		pivot := -1
		for j := 0; j < s.nArtStart; j++ {
			if !s.inBasis[j] && !s.banned[j] && math.Abs(row[j]) > 1e-7 {
				pivot = j
				break
			}
		}
		if pivot >= 0 {
			s.pivot(i, pivot)
		}
	}
}

// installCosts recomputes the reduced-cost row for the problem objective in
// the current basis and orientation.
func (s *Solver) installCosts() {
	c := s.cbuf[:s.n]
	for j := range c {
		c[j] = 0
	}
	for j := 0; j < s.nStruct; j++ {
		cj := s.prob.cost(j)
		if s.flipped[j] {
			cj = -cj
		}
		c[j] = cj
	}
	copy(s.d[:s.n], c)
	for i, b := range s.basis[:s.m] {
		cb := c[b]
		if cb == 0 {
			continue
		}
		row := s.rows[i]
		for j := 0; j < s.n; j++ {
			s.d[j] -= cb * row[j]
		}
	}
	for _, b := range s.basis[:s.m] {
		s.d[b] = 0
	}
}

// iterate runs primal simplex iterations until optimality, unboundedness or
// a budget is exhausted.
//
//sqpr:hotpath
func (s *Solver) iterate() Status {
	for {
		if s.iters >= s.maxIters {
			return IterLimit
		}
		if s.iters%16 == 0 {
			if !s.deadline.IsZero() && time.Now().After(s.deadline) {
				return IterLimit
			}
			if s.ctx != nil && s.ctx.Err() != nil {
				return IterLimit
			}
		}
		j := s.chooseEntering()
		if j < 0 {
			return Optimal
		}
		st := s.step(j)
		if st != 0 {
			return st
		}
		s.iters++
	}
}

// chooseEntering selects a nonbasic column with negative reduced cost, using
// Dantzig's rule normally and Bland's rule once degeneracy stalls.
//
//sqpr:hotpath
func (s *Solver) chooseEntering() int {
	if s.bland {
		for j := 0; j < s.n; j++ {
			if !s.inBasis[j] && !s.banned[j] && s.d[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < s.n; j++ {
		if s.inBasis[j] || s.banned[j] {
			continue
		}
		if s.d[j] < bestVal {
			bestVal = s.d[j]
			best = j
		}
	}
	return best
}

// step performs the ratio test and either flips the entering variable to
// its opposite bound or pivots it into the basis. Returns 0 on success,
// Unbounded if the entering direction is unbounded.
//
//sqpr:hotpath
func (s *Solver) step(j int) Status {
	tmax := s.upper[j]
	leave := -1
	leaveAtUpper := false
	for i := 0; i < s.m; i++ {
		a := s.rows[i][j]
		if a > pivotTol {
			lim := s.rhs[i] / a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(s.rows[leave][j])) {
				tmax = lim
				leave = i
				leaveAtUpper = false
			}
		} else if a < -pivotTol {
			ub := s.upper[s.basis[i]]
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - s.rhs[i]) / -a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(s.rows[leave][j])) {
				tmax = lim
				leave = i
				leaveAtUpper = true
			}
		}
	}
	if leave < 0 {
		if math.IsInf(tmax, 1) {
			return Unbounded
		}
		// Bound flip: the entering variable moves straight to its upper
		// bound; re-orient it so it is nonbasic at zero again.
		s.flipColumn(j)
		s.noteProgress(tmax)
		return 0
	}
	if tmax < ratioTol {
		s.stall++
		if s.stall > 5*(s.m+10) {
			s.bland = true
		}
	} else {
		s.noteProgress(tmax)
	}
	if leaveAtUpper && s.upper[s.basis[leave]] > 0 {
		// Re-orient the leaving basic variable so it exits at zero. A
		// zero-width column (fixed variable, pinned artificial) needs no
		// re-orientation — both of its bounds coincide at zero — and for a
		// fixed variable the orientation *is* the fix-at-upper semantics,
		// so flipping it would silently move the pinned value.
		s.flipBasicRow(leave)
	}
	s.pivot(leave, j)
	return 0
}

//sqpr:hotpath
func (s *Solver) noteProgress(step float64) {
	if step > ratioTol {
		s.stall = 0
	}
}

// flipColumn substitutes x_j = u_j − x̄_j for a nonbasic variable with a
// finite upper bound, moving the current point accordingly.
//
//sqpr:hotpath
func (s *Solver) flipColumn(j int) {
	u := s.upper[j]
	for i := 0; i < s.m; i++ {
		a := s.rows[i][j]
		if a != 0 {
			s.rhs[i] -= a * u
			s.rows[i][j] = -a
		}
	}
	s.d[j] = -s.d[j]
	s.flipped[j] = !s.flipped[j]
}

// flipBasicRow re-orients the basic variable of row r (x → u − x), negating
// the row so the variable's identity coefficient stays +1.
//
//sqpr:hotpath
func (s *Solver) flipBasicRow(r int) {
	b := s.basis[r]
	u := s.upper[b]
	row := s.rows[r]
	for j := 0; j < s.n; j++ {
		row[j] = -row[j]
	}
	row[b] = 1
	s.rhs[r] = u - s.rhs[r]
	s.flipped[b] = !s.flipped[b]
}

// pivot makes column j basic in row r by Gaussian elimination of the
// tableau, right-hand side and reduced-cost row.
//
//sqpr:hotpath
func (s *Solver) pivot(r, j int) {
	rowR := s.rows[r]
	piv := rowR[j]
	if piv != 1 {
		inv := 1 / piv
		for k := 0; k < s.n; k++ {
			rowR[k] *= inv
		}
		rowR[j] = 1 // guard against roundoff
		s.rhs[r] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.rows[i][j]
		if f == 0 {
			continue
		}
		rowI := s.rows[i]
		for k := 0; k < s.n; k++ {
			rowI[k] -= f * rowR[k]
		}
		rowI[j] = 0
		s.rhs[i] -= f * s.rhs[r]
		if s.rhs[i] < 0 && s.rhs[i] > -1e-11 {
			s.rhs[i] = 0
		}
	}
	if f := s.d[j]; f != 0 {
		for k := 0; k < s.n; k++ {
			s.d[k] -= f * rowR[k]
		}
		s.d[j] = 0
	}
	old := s.basis[r]
	s.inBasis[old] = false
	s.rowOf[old] = -1
	s.basis[r] = j
	s.inBasis[j] = true
	s.rowOf[j] = r
}
