package lp

import (
	"context"
	"math"
	"time"
)

// Numerical tolerances for the simplex method.
const (
	costTol  = 1e-9 // reduced-cost optimality tolerance
	pivotTol = 1e-9 // minimum admissible pivot magnitude
	ratioTol = 1e-9 // ratio-test tie tolerance
	zeroTol  = 1e-9 // phase-1 objective zero test
)

// tableau is the dense working state of a bounded-variable primal simplex.
// All nonbasic variables sit at zero in their current orientation; a
// variable whose complement is active (x̄ = u − x) has flipped set, so
// "nonbasic at upper bound" is represented as "flipped, nonbasic at zero".
type tableau struct {
	m, n    int         // rows, total columns (structural+slack+artificial)
	rows    [][]float64 // B⁻¹A, m×n, updated in place by pivots
	rhs     []float64   // current basic variable values, length m
	basis   []int       // basic variable of each row
	inBasis []bool      // per-variable basic flag
	upper   []float64   // per-variable upper bound (orientation-invariant)
	flipped []bool      // complement orientation flag
	banned  []bool      // columns excluded from entering (artificials in phase 2)
	d       []float64   // reduced costs in current orientation

	nArtStart int // first artificial column; columns >= nArtStart are artificial

	iters    int
	maxIters int
	deadline time.Time
	ctx      context.Context
	bland    bool // anti-cycling rule engaged
	stall    int  // consecutive degenerate iterations
}

// Solve optimises the problem with the given options. It never mutates p.
func Solve(p *Problem, opts Options) Solution {
	if err := p.Validate(); err != nil {
		// Structural errors are programming bugs of the caller; surface
		// them as infeasibility rather than panicking inside the solver.
		return Solution{Status: Infeasible}
	}
	if p.NumVars == 0 {
		// Constant problem: feasible iff every row admits the zero vector.
		x := []float64{}
		if constRowsFeasible(p) {
			return Solution{Status: Optimal, X: x, Feasible: true}
		}
		return Solution{Status: Infeasible}
	}

	t := newTableau(p, opts)

	// Phase 1: drive artificial variables to zero.
	if t.hasArtificials() {
		st := t.iterate()
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: t.iters}
		}
		if t.phase1Value() > zeroTol*float64(1+t.m) {
			return Solution{Status: Infeasible, Iters: t.iters}
		}
		t.driveOutArtificials()
		t.banArtificials()
	}

	// Phase 2: optimise the true objective from the feasible basis.
	t.installCosts(p)
	st := t.iterate()

	x := t.extract(p)
	sol := Solution{
		Status:    st,
		X:         x,
		Objective: p.Objective(x),
		Feasible:  p.CheckFeasible(x),
		Iters:     t.iters,
	}
	if st == Unbounded {
		sol.Feasible = false
	}
	return sol
}

// constRowsFeasible reports whether a zero-variable problem is feasible.
func constRowsFeasible(p *Problem) bool {
	for _, c := range p.Cons {
		switch c.Sense {
		case LE:
			if 0 > c.RHS+FeasTol {
				return false
			}
		case GE:
			if 0 < c.RHS-FeasTol {
				return false
			}
		case EQ:
			if math.Abs(c.RHS) > FeasTol {
				return false
			}
		}
	}
	return true
}

// newTableau builds the initial simplex tableau: slack variables give LE
// rows an identity start where possible, artificials cover the rest, and
// the phase-1 reduced costs are installed.
func newTableau(p *Problem, opts Options) *tableau {
	m := len(p.Cons)
	n := p.NumVars

	// First pass: count slacks so column indices are stable.
	slackOf := make([]int, m)
	nSlack := 0
	for i, c := range p.Cons {
		if c.Sense == EQ {
			slackOf[i] = -1
			continue
		}
		slackOf[i] = n + nSlack
		nSlack++
	}
	// Artificials are assigned lazily below; reserve worst-case capacity.
	total := n + nSlack + m

	t := &tableau{
		m:        m,
		rows:     make([][]float64, m),
		rhs:      make([]float64, m),
		basis:    make([]int, m),
		upper:    make([]float64, total),
		flipped:  make([]bool, total),
		banned:   make([]bool, total),
		d:        make([]float64, total),
		deadline: opts.Deadline,
		ctx:      opts.Ctx,
	}
	for j := 0; j < total; j++ {
		t.upper[j] = math.Inf(1)
	}
	for j := 0; j < n; j++ {
		t.upper[j] = p.upper(j)
	}

	nArt := 0
	artRows := make([]int, 0, m)
	for i, c := range p.Cons {
		row := make([]float64, total)
		for _, tm := range c.Terms {
			row[tm.Var] += tm.Coef
		}
		rhs := c.RHS
		// Slack sign before any negation: LE rows get a·x + s = b,
		// GE rows get a·x − s = b, both with s ≥ 0.
		slackCoef := 0.0
		switch c.Sense {
		case LE:
			slackCoef = 1.0
		case GE:
			slackCoef = -1.0
		}
		if slackOf[i] >= 0 {
			row[slackOf[i]] = slackCoef
		}
		if rhs < 0 {
			// Negate the equality row so the right-hand side is
			// non-negative; this flips the slack coefficient too.
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			if slackOf[i] >= 0 {
				slackCoef = -slackCoef
				row[slackOf[i]] = slackCoef
			}
			rhs = -rhs
		}
		t.rhs[i] = rhs
		t.rows[i] = row
		if slackOf[i] >= 0 && slackCoef > 0 {
			t.basis[i] = slackOf[i]
		} else {
			art := n + nSlack + nArt
			nArt++
			row[art] = 1.0
			t.basis[i] = art
			artRows = append(artRows, i)
		}
	}
	t.n = n + nSlack + nArt
	t.nArtStart = n + nSlack
	t.maxIters = opts.MaxIters
	if t.maxIters <= 0 {
		t.maxIters = 200 * (m + t.n + 10)
	}
	t.inBasis = make([]bool, t.n)
	for _, b := range t.basis {
		t.inBasis[b] = true
	}

	// Phase-1 reduced costs: minimise the sum of artificials. With the
	// artificials basic, d_j = −Σ_{artificial rows i} T_ij.
	for _, i := range artRows {
		row := t.rows[i]
		for j := 0; j < t.n; j++ {
			t.d[j] -= row[j]
		}
	}
	for j := t.nArtStart; j < t.n; j++ {
		t.d[j]++ // cost 1 on artificials
	}
	return t
}

func (t *tableau) hasArtificials() bool { return t.nArtStart < t.n }

// phase1Value returns the current sum of artificial variable values.
func (t *tableau) phase1Value() float64 {
	var sum float64
	for i, b := range t.basis {
		if b >= t.nArtStart {
			sum += t.rhs[i]
		}
	}
	return sum
}

// banArtificials excludes artificial columns from entering the basis.
func (t *tableau) banArtificials() {
	for j := t.nArtStart; j < t.n; j++ {
		t.banned[j] = true
	}
}

// driveOutArtificials pivots zero-valued basic artificials onto structural
// columns where possible, leaving redundant rows with a basic artificial
// pinned at zero.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.nArtStart {
			continue
		}
		row := t.rows[i]
		pivot := -1
		for j := 0; j < t.nArtStart; j++ {
			if !t.inBasis[j] && math.Abs(row[j]) > 1e-7 {
				pivot = j
				break
			}
		}
		if pivot >= 0 {
			t.pivot(i, pivot)
		}
	}
}

// installCosts recomputes the reduced-cost row for the problem objective in
// the current basis and orientation.
func (t *tableau) installCosts(p *Problem) {
	c := make([]float64, t.n)
	for j := 0; j < p.NumVars; j++ {
		cj := p.cost(j)
		if t.flipped[j] {
			cj = -cj
		}
		c[j] = cj
	}
	copy(t.d, c)
	for i, b := range t.basis {
		cb := c[b]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < t.n; j++ {
			t.d[j] -= cb * row[j]
		}
	}
	for _, b := range t.basis {
		t.d[b] = 0
	}
}

// iterate runs primal simplex iterations until optimality, unboundedness or
// a budget is exhausted.
func (t *tableau) iterate() Status {
	for {
		if t.iters >= t.maxIters {
			return IterLimit
		}
		if t.iters%64 == 0 {
			if !t.deadline.IsZero() && time.Now().After(t.deadline) {
				return IterLimit
			}
			if t.ctx != nil && t.ctx.Err() != nil {
				return IterLimit
			}
		}
		j := t.chooseEntering()
		if j < 0 {
			return Optimal
		}
		st := t.step(j)
		if st != 0 {
			return st
		}
		t.iters++
	}
}

// chooseEntering selects a nonbasic column with negative reduced cost, using
// Dantzig's rule normally and Bland's rule once degeneracy stalls.
func (t *tableau) chooseEntering() int {
	if t.bland {
		for j := 0; j < t.n; j++ {
			if !t.inBasis[j] && !t.banned[j] && t.d[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < t.n; j++ {
		if t.inBasis[j] || t.banned[j] {
			continue
		}
		if t.d[j] < bestVal {
			bestVal = t.d[j]
			best = j
		}
	}
	return best
}

// step performs the ratio test and either flips the entering variable to
// its opposite bound or pivots it into the basis. Returns 0 on success,
// Unbounded if the entering direction is unbounded.
func (t *tableau) step(j int) Status {
	tmax := t.upper[j]
	leave := -1
	leaveAtUpper := false
	for i := 0; i < t.m; i++ {
		a := t.rows[i][j]
		if a > pivotTol {
			lim := t.rhs[i] / a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(t.rows[leave][j])) {
				tmax = lim
				leave = i
				leaveAtUpper = false
			}
		} else if a < -pivotTol {
			ub := t.upper[t.basis[i]]
			if math.IsInf(ub, 1) {
				continue
			}
			lim := (ub - t.rhs[i]) / -a
			if lim < tmax-ratioTol || (lim < tmax+ratioTol && leave >= 0 && math.Abs(a) > math.Abs(t.rows[leave][j])) {
				tmax = lim
				leave = i
				leaveAtUpper = true
			}
		}
	}
	if leave < 0 {
		if math.IsInf(tmax, 1) {
			return Unbounded
		}
		// Bound flip: the entering variable moves straight to its upper
		// bound; re-orient it so it is nonbasic at zero again.
		t.flipColumn(j)
		t.noteProgress(tmax)
		return 0
	}
	if tmax < ratioTol {
		t.stall++
		if t.stall > 5*(t.m+10) {
			t.bland = true
		}
	} else {
		t.noteProgress(tmax)
	}
	if leaveAtUpper {
		// Re-orient the leaving basic variable so it exits at zero.
		t.flipBasicRow(leave)
	}
	t.pivot(leave, j)
	return 0
}

func (t *tableau) noteProgress(step float64) {
	if step > ratioTol {
		t.stall = 0
	}
}

// flipColumn substitutes x_j = u_j − x̄_j for a nonbasic variable with a
// finite upper bound, moving the current point accordingly.
func (t *tableau) flipColumn(j int) {
	u := t.upper[j]
	for i := 0; i < t.m; i++ {
		a := t.rows[i][j]
		if a != 0 {
			t.rhs[i] -= a * u
			t.rows[i][j] = -a
		}
	}
	t.d[j] = -t.d[j]
	t.flipped[j] = !t.flipped[j]
}

// flipBasicRow re-orients the basic variable of row r (x → u − x), negating
// the row so the variable's identity coefficient stays +1.
func (t *tableau) flipBasicRow(r int) {
	b := t.basis[r]
	u := t.upper[b]
	row := t.rows[r]
	for j := 0; j < t.n; j++ {
		row[j] = -row[j]
	}
	row[b] = 1
	t.rhs[r] = u - t.rhs[r]
	t.flipped[b] = !t.flipped[b]
}

// pivot makes column j basic in row r by Gaussian elimination of the
// tableau, right-hand side and reduced-cost row.
func (t *tableau) pivot(r, j int) {
	rowR := t.rows[r]
	piv := rowR[j]
	if piv != 1 {
		inv := 1 / piv
		for k := 0; k < t.n; k++ {
			rowR[k] *= inv
		}
		rowR[j] = 1 // guard against roundoff
		t.rhs[r] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.rows[i][j]
		if f == 0 {
			continue
		}
		rowI := t.rows[i]
		for k := 0; k < t.n; k++ {
			rowI[k] -= f * rowR[k]
		}
		rowI[j] = 0
		t.rhs[i] -= f * t.rhs[r]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	if f := t.d[j]; f != 0 {
		for k := 0; k < t.n; k++ {
			t.d[k] -= f * rowR[k]
		}
		t.d[j] = 0
	}
	old := t.basis[r]
	t.inBasis[old] = false
	t.basis[r] = j
	t.inBasis[j] = true
}

// extract reconstructs structural variable values in the original
// orientation.
func (t *tableau) extract(p *Problem) []float64 {
	val := make([]float64, t.n)
	for i, b := range t.basis {
		val[b] = t.rhs[i]
	}
	x := make([]float64, p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		v := val[j]
		if t.flipped[j] {
			v = t.upper[j] - v
		}
		// Clamp tiny numerical noise into the box.
		if v < 0 && v > -1e-9 {
			v = 0
		}
		if u := t.upper[j]; !math.IsInf(u, 1) && v > u && v < u+1e-9 {
			v = u
		}
		x[j] = v
	}
	return x
}
