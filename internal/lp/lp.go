// Package lp implements a dense primal simplex solver for linear programs
// with variable upper bounds.
//
// The solver handles problems of the form
//
//	minimise  c·x
//	subject to  a_i·x {<=,>=,=} b_i   for every constraint i
//	            0 <= x_j <= u_j      for every variable j (u_j may be +Inf)
//
// Upper bounds are handled inside the simplex via complement substitution
// (x̄ = u − x), so they do not add rows. Feasibility is established with a
// standard two-phase method using artificial variables. The solver is the
// substrate for the branch-and-bound MILP solver in internal/milp, which in
// turn stands in for the CPLEX dependency of the SQPR paper.
package lp

import (
	"context"
	"fmt"
	"math"
	"time"
)

// Sense is the relational sense of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int8(s))
}

// Term is a single coefficient on a variable inside a linear expression.
type Term struct {
	Var  int     // variable index in [0, NumVars)
	Coef float64 // coefficient
}

// Constraint is one linear row of the problem.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program in the canonical form documented on the
// package comment. The zero value is an empty (trivially optimal) problem.
type Problem struct {
	// NumVars is the number of structural variables.
	NumVars int
	// Cost holds the minimisation objective coefficients; missing entries
	// (shorter slice) are treated as zero.
	Cost []float64
	// Upper holds per-variable upper bounds; missing entries are +Inf.
	// All lower bounds are zero by construction.
	Upper []float64
	// Cons are the linear constraints.
	Cons []Constraint
}

// Status reports the outcome of a solve.
type Status int8

// Solver outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set has no feasible point.
	Infeasible
	// Unbounded means the objective can decrease without bound.
	Unbounded
	// IterLimit means the iteration budget or deadline was exhausted
	// before optimality was proven. X holds the best feasible point found
	// if Feasible is true.
	IterLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64 // structural variable values (valid when Feasible)
	Objective float64   // c·X
	Feasible  bool      // X satisfies all constraints and bounds
	Iters     int       // simplex iterations performed across both phases
}

// Options tunes a solve.
type Options struct {
	// Deadline aborts the solve when exceeded; zero means no deadline.
	Deadline time.Time
	// Ctx, when non-nil, is polled periodically during iteration; a
	// cancelled context aborts the solve like an exhausted deadline.
	Ctx context.Context
	// MaxIters caps total simplex iterations; 0 selects a size-derived
	// default.
	MaxIters int
	// WarmOnly makes an iteration-capped warm ReSolve return IterLimit
	// instead of falling back to a cold rebuild with a fresh budget.
	// Branch-and-bound probing uses this: a probe is only worth its answer
	// if the warm path reaches it cheaply.
	WarmOnly bool
}

// Upper returns the upper bound of variable j.
func (p *Problem) upper(j int) float64 {
	if j < len(p.Upper) {
		return p.Upper[j]
	}
	return math.Inf(1)
}

// cost returns the objective coefficient of variable j.
func (p *Problem) cost(j int) float64 {
	if j < len(p.Cost) {
		return p.Cost[j]
	}
	return 0
}

// Validate checks the structural integrity of the problem: variable indices
// in range, finite coefficients, and non-negative upper bounds.
func (p *Problem) Validate() error {
	for j := 0; j < len(p.Upper) && j < p.NumVars; j++ {
		if p.Upper[j] < 0 || math.IsNaN(p.Upper[j]) {
			return fmt.Errorf("lp: variable %d has invalid upper bound %v", j, p.Upper[j])
		}
	}
	if len(p.Cost) > p.NumVars {
		return fmt.Errorf("lp: cost vector longer (%d) than variable count (%d)", len(p.Cost), p.NumVars)
	}
	if len(p.Upper) > p.NumVars {
		return fmt.Errorf("lp: bound vector longer (%d) than variable count (%d)", len(p.Upper), p.NumVars)
	}
	for i, c := range p.Cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("lp: constraint %d references variable %d outside [0,%d)", i, t.Var, p.NumVars)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("lp: constraint %d has non-finite coefficient on variable %d", i, t.Var)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has non-finite right-hand side", i)
		}
	}
	return nil
}

// Eval computes a·x for the given constraint row.
func Eval(terms []Term, x []float64) float64 {
	var sum float64
	for _, t := range terms {
		sum += t.Coef * x[t.Var]
	}
	return sum
}

// FeasTol is the feasibility tolerance used by CheckFeasible and by the
// solver when classifying a point as feasible.
const FeasTol = 1e-6

// CheckFeasible reports whether x satisfies every constraint and bound of p
// within FeasTol (scaled by the magnitude of the row activity).
func (p *Problem) CheckFeasible(x []float64) bool {
	if len(x) < p.NumVars {
		return false
	}
	for j := 0; j < p.NumVars; j++ {
		if x[j] < -FeasTol || x[j] > p.upper(j)+FeasTol {
			return false
		}
	}
	for _, c := range p.Cons {
		lhs := Eval(c.Terms, x)
		tol := FeasTol * (1 + math.Abs(c.RHS))
		switch c.Sense {
		case LE:
			if lhs > c.RHS+tol {
				return false
			}
		case GE:
			if lhs < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// Objective computes c·x for the problem's cost vector.
func (p *Problem) Objective(x []float64) float64 {
	var sum float64
	for j := 0; j < len(p.Cost) && j < len(x); j++ {
		sum += p.Cost[j] * x[j]
	}
	return sum
}
