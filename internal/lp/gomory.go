package lp

import "math"

// Gomory mixed-integer (GMI) cut generation from the current optimal basis.
//
// For a basis row whose basic variable is integer-constrained but sits at a
// fractional value b̄ = ⌊b̄⌋ + f0, the GMI inequality over the nonbasic
// variables (all at 0 in the tableau's current orientation)
//
//	Σ_int  g_j·x_j + Σ_cont h_j·x_j >= f0,
//	g_j = f_j            if f_j <= f0,   f_j = frac(ā_j)
//	    = f0(1-f_j)/(1-f0) otherwise
//	h_j = ā_j            if ā_j >= 0
//	    = f0(-ā_j)/(1-f0) otherwise
//
// is valid for every mixed-integer point. The solver re-expresses the cut
// over the original structural variables — undoing bound flips and
// substituting slack definitions — so the caller can pool it like any other
// row. Generation runs at the branch-and-bound root only: with no variable
// fixes in place, the emitted rows are globally valid.

// Numerical guard rails for cut generation.
const (
	gmiMinFrac    = 0.02  // basic value must be at least this fractional
	gmiMaxTerms   = 200   // skip cuts denser than this
	gmiMaxDynamic = 1e7   // max |coef| ratio within one cut
	gmiDropTol    = 1e-11 // relative magnitude below which terms are dropped
)

// GomoryCuts derives up to max GMI cuts from the current basis, which must
// come from an Optimal ReSolve with no variable fixes applied. isInt
// reports, per structural variable, whether the model constrains it to
// integer values. Each cut is delivered to emit as structural-space terms
// with a GE sense (terms alias solver scratch; emit must copy). Returns the
// number of cuts emitted.
func (s *Solver) GomoryCuts(isInt []bool, max int, emit func(terms []Term, rhs float64)) int {
	if !s.warm || max <= 0 || len(isInt) < s.nStruct {
		return 0
	}
	for j := 0; j < s.nStruct; j++ {
		if s.fixVal[j] != fixFree {
			return 0 // node-local fixes would make the cuts non-global
		}
	}
	// Reverse map: tableau column of a slack -> its original row.
	s.gColRow = growI(s.gColRow, s.n)
	for j := range s.gColRow[:s.n] {
		s.gColRow[j] = -1
	}
	for r := 0; r < s.mAll; r++ {
		if sl := s.slackOf[r]; sl >= 0 && s.activeRows[r] && sl < s.n {
			s.gColRow[sl] = r
		}
	}
	s.gAcc = growF(s.gAcc, s.nStruct)
	s.gMark = growI(s.gMark, s.nStruct)
	for j := range s.gMark[:s.nStruct] {
		s.gMark[j] = 0
	}
	s.gTerms = s.gTerms[:0]

	emitted := 0
	for i := 0; i < s.m && emitted < max; i++ {
		b := s.basis[i]
		if b >= s.nStruct || !isInt[b] {
			continue
		}
		f0 := s.rhs[i] - math.Floor(s.rhs[i])
		if f0 < gmiMinFrac || f0 > 1-gmiMinFrac {
			continue
		}
		if s.gomoryFromRow(i, f0, isInt, emit) {
			emitted++
		}
	}
	return emitted
}

// gomoryFromRow builds and emits one GMI cut from basis row i; reports
// whether a cut was emitted.
func (s *Solver) gomoryFromRow(i int, f0 float64, isInt []bool, emit func([]Term, float64)) bool {
	row := s.rows[i]
	ratio := f0 / (1 - f0)
	s.gRound++
	round := s.gRound
	touched := s.gTouched[:0]
	rhs := f0

	// acc accumulates structural-space coefficients of the GE cut.
	add := func(j int, c float64) {
		if s.gMark[j] != round {
			s.gMark[j] = round
			s.gAcc[j] = 0
			touched = append(touched, j)
		}
		s.gAcc[j] += c
	}

	ok := true
	for j := 0; j < s.n && ok; j++ {
		if s.inBasis[j] {
			continue
		}
		a := row[j]
		if a == 0 {
			continue
		}
		switch {
		case j < s.nStruct && isInt[j]:
			// Integer nonbasic (possibly in complement orientation; the
			// complement of an integer variable is integer).
			f := a - math.Floor(a)
			g := f
			if f > f0 {
				g = ratio * (1 - f)
			}
			if g < 1e-12 {
				continue
			}
			if s.flipped[j] {
				// g·x̄ = g·(u − x): constant to the RHS, negated term.
				u := s.baseU[j]
				if math.IsInf(u, 1) {
					ok = false
					break
				}
				rhs -= g * u
				add(j, -g)
			} else {
				add(j, g)
			}
		case j < s.nStruct:
			// Continuous structural nonbasic.
			h := a
			if a < 0 {
				h = ratio * -a
			}
			if h < 1e-12 {
				continue
			}
			if s.flipped[j] {
				u := s.baseU[j]
				if math.IsInf(u, 1) {
					ok = false
					break
				}
				rhs -= h * u
				add(j, -h)
			} else {
				add(j, h)
			}
		default:
			// Slack (continuous, >= 0) or artificial column.
			if s.upper[j] == 0 {
				continue // pinned artificial: identically zero
			}
			r := s.gColRow[j]
			if r < 0 {
				ok = false // untracked column; give up on this row
				break
			}
			h := a
			if a < 0 {
				h = ratio * -a
			}
			if h < 1e-12 {
				continue
			}
			c := &s.prob.Cons[r]
			if c.Sense == GE {
				// Built as −a·x + s = −b: s = a·x − b.
				rhs += h * c.RHS
				for _, t := range c.Terms {
					add(t.Var, h*t.Coef)
				}
			} else {
				// a·x + s = b: s = b − a·x.
				rhs -= h * c.RHS
				for _, t := range c.Terms {
					add(t.Var, -h*t.Coef)
				}
			}
		}
	}
	s.gTouched = touched
	if !ok {
		return false
	}

	// Assemble, with dynamic-range and density guards; tiny coefficients
	// are dropped with a conservative RHS adjustment (for a GE row, a
	// dropped c>0 term weakens the RHS by c·u).
	maxAbs := 0.0
	for _, j := range touched {
		if v := math.Abs(s.gAcc[j]); v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return false
	}
	s.gTerms = s.gTerms[:0]
	for _, j := range touched {
		c := s.gAcc[j]
		if math.Abs(c) <= gmiDropTol*maxAbs {
			if c > 0 {
				u := s.prob.upper(j)
				if math.IsInf(u, 1) {
					return false
				}
				rhs -= c * u
			}
			continue
		}
		if math.Abs(c) < maxAbs/gmiMaxDynamic {
			return false
		}
		s.gTerms = append(s.gTerms, Term{Var: j, Coef: c})
	}
	if len(s.gTerms) == 0 || len(s.gTerms) > gmiMaxTerms {
		return false
	}
	emit(s.gTerms, rhs)
	return true
}
