package lp

import "math"

// Sparse GMI cut generation. The maths and all numerical guards are shared
// with the dense reference (see dense.go for the derivation and the
// gmi* constants); the difference is purely mechanical: the tableau row of
// a basic variable is not stored, so each candidate row is expanded on
// demand with one BTRAN (rho = B⁻ᵀe_i) and one sparse pivot-row build.

// GomoryCuts derives up to max GMI cuts from the current basis, which must
// come from an Optimal ReSolve with no variable fixes applied. isInt
// reports, per structural variable, whether the model constrains it to
// integer values. Each cut is delivered to emit as structural-space terms
// with a GE sense (terms alias solver scratch; emit must copy). Returns the
// number of cuts emitted.
func (s *Solver) GomoryCuts(isInt []bool, max int, emit func(terms []Term, rhs float64)) int {
	if !s.warm || max <= 0 || len(isInt) < s.nStruct {
		return 0
	}
	for j := 0; j < s.nStruct; j++ {
		if s.fixVal[j] != fixFree {
			return 0 // node-local fixes would make the cuts non-global
		}
	}
	if !s.prepWarm() {
		return 0 // factors stale and not rebuildable; no safe tableau
	}
	s.gAcc = growF(s.gAcc, s.nStruct)
	s.gMark = growI(s.gMark, s.nStruct)
	for j := range s.gMark[:s.nStruct] {
		s.gMark[j] = 0
	}
	s.gRound = 0
	s.gTerms = s.gTerms[:0]

	emitted := 0
	for i := 0; i < s.m && emitted < max; i++ {
		b := s.basis[i]
		if b >= s.nStruct || !isInt[b] {
			continue
		}
		f0 := s.xB[i] - math.Floor(s.xB[i])
		if f0 < gmiMinFrac || f0 > 1-gmiMinFrac {
			continue
		}
		if s.gomoryFromRow(i, f0, isInt, emit) {
			emitted++
		}
	}
	return emitted
}

// gomoryFromRow builds and emits one GMI cut from basis row i; reports
// whether a cut was emitted. The tableau row is expanded into the sparse
// pivot-row scratch (accV over accTouch) before the standard GMI
// coefficient map and structural-space re-expression run over it.
func (s *Solver) gomoryFromRow(i int, f0 float64, isInt []bool, emit func([]Term, float64)) bool {
	s.btranRow(i)
	s.buildPivotRow()

	ratio := f0 / (1 - f0)
	s.gRound++
	round := s.gRound
	touched := s.gTouched[:0]
	rhs := f0

	// acc accumulates structural-space coefficients of the GE cut.
	add := func(j int, c float64) {
		if s.gMark[j] != round {
			s.gMark[j] = round
			s.gAcc[j] = 0
			touched = append(touched, j)
		}
		s.gAcc[j] += c
	}

	ok := true
	for _, j32 := range s.accTouch {
		j := int(j32)
		if s.inBasis[j] {
			continue
		}
		a := s.accV[j]
		if a == 0 {
			continue
		}
		switch {
		case j < s.nStruct && isInt[j]:
			// Integer nonbasic (possibly in complement orientation; the
			// complement of an integer variable is integer).
			f := a - math.Floor(a)
			g := f
			if f > f0 {
				g = ratio * (1 - f)
			}
			if g < 1e-12 {
				continue
			}
			if s.flipped[j] {
				// g·x̄ = g·(u − x): constant to the RHS, negated term.
				u := s.baseU[j]
				if math.IsInf(u, 1) {
					ok = false
				} else {
					rhs -= g * u
					add(j, -g)
				}
			} else {
				add(j, g)
			}
		case j < s.nStruct:
			// Continuous structural nonbasic.
			h := a
			if a < 0 {
				h = ratio * -a
			}
			if h < 1e-12 {
				continue
			}
			if s.flipped[j] {
				u := s.baseU[j]
				if math.IsInf(u, 1) {
					ok = false
				} else {
					rhs -= h * u
					add(j, -h)
				}
			} else {
				add(j, h)
			}
		default:
			// Slack (continuous, >= 0) or artificial column.
			if s.upper[j] == 0 {
				continue // pinned artificial: identically zero
			}
			aux := j - s.nStruct
			if s.auxIsArt[aux] {
				ok = false // live artificial in the row; give up on it
				break
			}
			h := a
			if a < 0 {
				h = ratio * -a
			}
			if h < 1e-12 {
				continue
			}
			c := &s.prob.Cons[s.slotRow[s.auxSlot[aux]]]
			if c.Sense == GE {
				// Built as a·x − s = b: s = a·x − b.
				rhs += h * c.RHS
				for _, t := range c.Terms {
					add(t.Var, h*t.Coef)
				}
			} else {
				// a·x + s = b: s = b − a·x.
				rhs -= h * c.RHS
				for _, t := range c.Terms {
					add(t.Var, -h*t.Coef)
				}
			}
		}
		if !ok {
			break
		}
	}
	s.gTouched = touched
	if !ok {
		return false
	}

	// Assemble, with dynamic-range and density guards; tiny coefficients
	// are dropped with a conservative RHS adjustment (for a GE row, a
	// dropped c>0 term weakens the RHS by c·u).
	maxAbs := 0.0
	for _, j := range touched {
		if v := math.Abs(s.gAcc[j]); v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return false
	}
	s.gTerms = s.gTerms[:0]
	for _, j := range touched {
		c := s.gAcc[j]
		if math.Abs(c) <= gmiDropTol*maxAbs {
			if c > 0 {
				u := s.prob.upper(j)
				if math.IsInf(u, 1) {
					return false
				}
				rhs -= c * u
			}
			continue
		}
		if math.Abs(c) < maxAbs/gmiMaxDynamic {
			return false
		}
		s.gTerms = append(s.gTerms, Term{Var: j, Coef: c})
	}
	if len(s.gTerms) == 0 || len(s.gTerms) > gmiMaxTerms {
		return false
	}
	emit(s.gTerms, rhs)
	return true
}
