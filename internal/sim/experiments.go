package sim

import (
	"context"
	"fmt"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
	"sqpr/internal/stats"
)

// Fig4aResult holds the planning-efficiency curves of Fig. 4(a): satisfied
// vs. submitted queries for the optimistic bound, SQPR under three solver
// timeouts, and the heuristic planner.
type Fig4aResult struct {
	Curves []Curve
}

// Fig4a runs the planning-efficiency experiment. The three timeouts play
// the role of the paper's 5/30/60 s CPLEX budgets.
func Fig4a(sc Scale) Fig4aResult {
	step := sc.Queries / 10
	var out Fig4aResult

	envB := BuildEnv(sc)
	out.Curves = append(out.Curves, RunAdmission("optimistic-bound", envB.NewBound(), envB.Queries, step))

	for _, tm := range []struct {
		label string
		d     time.Duration
	}{
		{"sqpr-long", 2 * sc.Timeout},
		{"sqpr-med", sc.Timeout},
		{"sqpr-short", sc.Timeout / 6},
	} {
		env := BuildEnv(sc)
		out.Curves = append(out.Curves, RunAdmission(tm.label, env.NewSQPR(sc, tm.d), env.Queries, step))
	}

	envH := BuildEnv(sc)
	out.Curves = append(out.Curves, RunAdmission("heuristic", envH.NewHeuristic(), envH.Queries, step))
	return out
}

// Fig4b explores batched submission: SQPR plans batches of n queries with
// an n-times solver budget, as in the paper's Fig. 4(b).
func Fig4b(sc Scale, batchSizes []int) Fig4aResult {
	step := sc.Queries / 10
	var out Fig4aResult
	for _, n := range batchSizes {
		env := BuildEnv(sc)
		ad := env.NewSQPR(sc, sc.Timeout)
		c := Curve{Label: fmt.Sprintf("%d-query-batches", n)}
		satisfied := 0
		for i := 0; i < len(env.Queries); i += n {
			end := i + n
			if end > len(env.Queries) {
				end = len(env.Queries)
			}
			batch := env.Queries[i:end]
			// WithBatch scales the deadline by the batch size itself.
			if _, err := ad.Submit(context.Background(), batch[0], plan.WithBatch(batch[1:]...)); err != nil {
				c.Errors++
			}
			for _, q := range batch {
				if ad.Admitted(q) {
					satisfied++
				}
			}
			if end%step < n {
				c.Inputs = append(c.Inputs, end)
				c.Satisfied = append(c.Satisfied, satisfied)
			}
		}
		if len(c.Inputs) == 0 || c.Inputs[len(c.Inputs)-1] != len(env.Queries) {
			c.Inputs = append(c.Inputs, len(env.Queries))
			c.Satisfied = append(c.Satisfied, satisfied)
		}
		out.Curves = append(out.Curves, c)
	}
	return out
}

// Fig4cResult holds the overlap experiment of Fig. 4(c): satisfiable
// queries as a function of the Zipf skew, for several base-stream counts.
type Fig4cResult struct {
	Zipfs       []float64
	BaseStreams []int
	// Satisfied[i][j] is the result for BaseStreams[i] and Zipfs[j].
	Satisfied [][]int
	// Errors totals submissions across all cells that failed with an error.
	Errors int
}

// Fig4c varies query overlap via the Zipf factor and the number of base
// streams; more overlap means more reuse and thus more admitted queries.
func Fig4c(sc Scale, zipfs []float64, baseCounts []int) Fig4cResult {
	res := Fig4cResult{Zipfs: zipfs, BaseStreams: baseCounts}
	for _, bc := range baseCounts {
		row := make([]int, 0, len(zipfs))
		for _, z := range zipfs {
			s := sc
			s.BaseStreams = bc
			s.Zipf = z
			env := BuildEnv(s)
			ad := env.NewSQPR(s, s.Timeout)
			n, errs := CountSatisfied(ad, env.Queries)
			row = append(row, n)
			res.Errors += errs
		}
		res.Satisfied = append(res.Satisfied, row)
	}
	return res
}

// ScalabilityResult is one satisfiable-queries series over a swept
// parameter, for SQPR and the optimistic bound (Fig. 5).
type ScalabilityResult struct {
	XLabel string
	X      []int
	SQPR   []int
	Bound  []int
	// Errors totals submissions across the sweep that failed with an error.
	Errors int
}

// Fig5a sweeps the number of hosts (Fig. 5(a)).
func Fig5a(sc Scale, hostCounts []int) ScalabilityResult {
	res := ScalabilityResult{XLabel: "hosts", X: hostCounts}
	for _, h := range hostCounts {
		s := sc
		s.Hosts = h
		n, errs := runSQPRCount(s)
		res.SQPR = append(res.SQPR, n)
		res.Errors += errs
		n, errs = runBoundCount(s)
		res.Bound = append(res.Bound, n)
		res.Errors += errs
	}
	return res
}

// Fig5b sweeps per-host CPU multipliers with 10x link capacity (Fig. 5(b)).
func Fig5b(sc Scale, cpuMultipliers []int) ScalabilityResult {
	res := ScalabilityResult{XLabel: "cpu-cores", X: cpuMultipliers}
	for _, mul := range cpuMultipliers {
		s := sc
		s.CPUPerHost = sc.CPUPerHost * float64(mul)
		s.LinkCap = sc.LinkCap * 10
		s.OutBW = sc.OutBW * 10
		s.InBW = sc.InBW * 10
		n, errs := runSQPRCount(s)
		res.SQPR = append(res.SQPR, n)
		res.Errors += errs
		n, errs = runBoundCount(s)
		res.Bound = append(res.Bound, n)
		res.Errors += errs
	}
	return res
}

// Fig5c sweeps the query arity: all submitted queries are k-way joins
// (Fig. 5(c)).
func Fig5c(sc Scale, arities []int) ScalabilityResult {
	res := ScalabilityResult{XLabel: "arity", X: arities}
	for _, k := range arities {
		s := sc
		s.Arities = []int{k}
		n, errs := runSQPRCount(s)
		res.SQPR = append(res.SQPR, n)
		res.Errors += errs
		n, errs = runBoundCount(s)
		res.Bound = append(res.Bound, n)
		res.Errors += errs
	}
	return res
}

func runSQPRCount(s Scale) (satisfied, errs int) {
	env := BuildEnv(s)
	return CountSatisfied(env.NewSQPR(s, s.Timeout), env.Queries)
}

func runBoundCount(s Scale) (satisfied, errs int) {
	env := BuildEnv(s)
	return CountSatisfied(env.NewBound(), env.Queries)
}

// TimingResult is an average-planning-time series (Fig. 6). Only planning
// calls issued while system CPU utilisation was between LoUtil and HiUtil
// are counted, matching the paper's 75–95% protocol.
type TimingResult struct {
	XLabel  string
	X       []int
	AvgTime []time.Duration
	Samples []int
	// Errors totals submissions across the sweep that failed with an error.
	Errors int
}

// Utilisation window of the Fig. 6 protocol.
const (
	LoUtil = 0.60
	HiUtil = 0.97
)

// Fig6a measures planning time against the number of hosts (Fig. 6(a)).
func Fig6a(sc Scale, hostCounts []int) TimingResult {
	res := TimingResult{XLabel: "hosts", X: hostCounts}
	for _, h := range hostCounts {
		s := sc
		s.Hosts = h
		// Let the candidate set grow with the system, as the paper's model
		// always spans all hosts; this is what makes planning time
		// sensitive to host count.
		s.MaxCandHost = h
		avg, n, errs := timedRun(s)
		res.AvgTime = append(res.AvgTime, avg)
		res.Samples = append(res.Samples, n)
		res.Errors += errs
	}
	return res
}

// Fig6b measures planning time against query arity (Fig. 6(b)).
func Fig6b(sc Scale, arities []int) TimingResult {
	res := TimingResult{XLabel: "arity", X: arities}
	for _, k := range arities {
		s := sc
		s.Arities = []int{k}
		avg, n, errs := timedRun(s)
		res.AvgTime = append(res.AvgTime, avg)
		res.Samples = append(res.Samples, n)
		res.Errors += errs
	}
	return res
}

func timedRun(s Scale) (time.Duration, int, int) {
	env := BuildEnv(s)
	ad := env.NewSQPR(s, s.Timeout)
	ctx := context.Background()
	for _, q := range env.Queries {
		// Errors are tallied by the Recorder; the timing protocol keeps
		// every call's duration either way.
		_, _ = ad.Submit(ctx, q)
	}
	var sum time.Duration
	n := 0
	for i, d := range ad.PlanTimes {
		if i < len(ad.UtilisationAt) && ad.UtilisationAt[i] >= LoUtil && ad.UtilisationAt[i] <= HiUtil {
			sum += d
			n++
		}
	}
	if n == 0 {
		// Fall back to the overall average when the window was never hit
		// (small systems may saturate before 75%).
		for _, d := range ad.PlanTimes {
			sum += d
		}
		n = len(ad.PlanTimes)
	}
	if n == 0 {
		return 0, 0, ad.Errors
	}
	return sum / time.Duration(n), n, ad.Errors
}

// UtilisationCDFs captures per-host CPU and network usage distributions of
// an assignment, the quantities plotted in Fig. 7(b) and (c).
func UtilisationCDFs(sys *dsps.System, a *dsps.Assignment) (cpu, net *stats.CDF) {
	u := a.ComputeUsage(sys)
	cpuSamples := make([]float64, sys.NumHosts())
	netSamples := make([]float64, sys.NumHosts())
	for h := 0; h < sys.NumHosts(); h++ {
		if sys.Hosts[h].CPU > 0 {
			cpuSamples[h] = 100 * u.CPU[h] / sys.Hosts[h].CPU
		}
		netSamples[h] = u.Out[h] + u.In[h]
	}
	return stats.NewCDF(cpuSamples), stats.NewCDF(netSamples)
}
