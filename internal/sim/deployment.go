package sim

import (
	"context"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/engine"
	"sqpr/internal/stats"
)

// DeployScale configures the Fig. 7 cluster-deployment study (the paper
// used 15 Emulab hosts, a 10 Mbps LAN, 300 base streams and waves of 50
// queries of 2- and 3-way joins).
type DeployScale struct {
	Hosts       int
	CPUPerHost  float64
	OutBW       float64
	InBW        float64
	LinkCap     float64
	BaseStreams int
	BaseRate    float64
	WaveSize    int
	Waves       int
	Timeout     time.Duration
	Seed        int64
}

// DefaultDeployScale mirrors §V-B at reduced scale.
func DefaultDeployScale() DeployScale {
	return DeployScale{
		Hosts:       15,
		CPUPerHost:  10, // "up to 15 2- and 3-way joins" at γ≈0.7/join
		OutBW:       60,
		InBW:        60,
		LinkCap:     25,
		BaseStreams: 150,
		BaseRate:    10,
		WaveSize:    50,
		Waves:       5,
		Timeout:     150 * time.Millisecond,
		Seed:        7,
	}
}

// Fig7Result holds all three deployment plots: per-wave admissions for
// SQPR and SODA (7a) and utilisation CDFs at the low and high checkpoints
// (7b: CPU %, 7c: network usage).
type Fig7Result struct {
	Inputs []int
	SQPR   []int
	SODA   []int
	// SQPRErrors and SODAErrors count submissions that failed with an
	// error rather than a clean rejection; a nonzero count means the
	// admission columns undercount attempted queries.
	SQPRErrors, SODAErrors int

	// Checkpoints for the CDFs (input-query counts, e.g. 50 and 150).
	LowCheckpoint, HighCheckpoint int
	CPULowSQPR, CPUHighSQPR       *stats.CDF
	CPULowSODA, CPUHighSODA       *stats.CDF
	NetLowSQPR, NetHighSQPR       *stats.CDF
	NetLowSODA, NetHighSODA       *stats.CDF
}

// Fig7 runs the deployment comparison of SQPR vs SODA over waves of
// queries, capturing admission counts per wave and utilisation CDFs at the
// checkpoints. Cancelling ctx stops the run gracefully at the next wave
// boundary; the waves completed so far remain in the result.
func Fig7(ctx context.Context, ds DeployScale) Fig7Result {
	scale := Scale{
		Hosts:       ds.Hosts,
		CPUPerHost:  ds.CPUPerHost,
		OutBW:       ds.OutBW,
		InBW:        ds.InBW,
		LinkCap:     ds.LinkCap,
		BaseStreams: ds.BaseStreams,
		BaseRate:    ds.BaseRate,
		Queries:     ds.WaveSize * ds.Waves,
		Zipf:        1,
		Arities:     []int{2, 3},
		Timeout:     ds.Timeout,
		MaxCandHost: 8,
		Seed:        ds.Seed,
	}

	envS := BuildEnv(scale)
	sqpr := envS.NewSQPR(scale, ds.Timeout)
	envD := BuildEnv(scale)
	soda := envD.NewSODA()

	res := Fig7Result{
		LowCheckpoint:  ds.WaveSize,
		HighCheckpoint: 3 * ds.WaveSize,
	}
	if ds.Waves < 3 {
		res.HighCheckpoint = ds.Waves * ds.WaveSize
	}

	sqprSatisfied, sodaSatisfied := 0, 0
	for wave := 0; wave < ds.Waves; wave++ {
		if ctx.Err() != nil {
			break
		}
		lo, hi := wave*ds.WaveSize, (wave+1)*ds.WaveSize
		for _, q := range envS.Queries[lo:hi] {
			r, err := sqpr.Submit(ctx, q)
			switch {
			case err != nil && ctx.Err() != nil:
				// Cancellation aborted the solve: stop, don't count it as
				// a solver failure.
			case err != nil:
				res.SQPRErrors++
			case r.Admitted:
				sqprSatisfied++
			}
			if ctx.Err() != nil {
				break
			}
		}
		for _, q := range envD.Queries[lo:hi] {
			if ctx.Err() != nil {
				break
			}
			r, err := soda.Submit(ctx, q)
			switch {
			case err != nil && ctx.Err() != nil:
			case err != nil:
				res.SODAErrors++
			case r.Admitted:
				sodaSatisfied++
			}
		}
		res.Inputs = append(res.Inputs, hi)
		res.SQPR = append(res.SQPR, sqprSatisfied)
		res.SODA = append(res.SODA, sodaSatisfied)

		if hi == res.LowCheckpoint {
			res.CPULowSQPR, res.NetLowSQPR = UtilisationCDFs(envS.Sys, sqpr.Assignment())
			res.CPULowSODA, res.NetLowSODA = UtilisationCDFs(envD.Sys, soda.Assignment())
		}
		if hi == res.HighCheckpoint {
			res.CPUHighSQPR, res.NetHighSQPR = UtilisationCDFs(envS.Sys, sqpr.Assignment())
			res.CPUHighSODA, res.NetHighSODA = UtilisationCDFs(envD.Sys, soda.Assignment())
		}
	}
	return res
}

// DeployAndMeasure instantiates an assignment on the mini engine, lets it
// run for the given duration, and returns the monitor snapshot plus the
// number of result tuples delivered. This is the "real deployment" leg of
// the Fig. 7 study: planners decide, the engine executes.
func DeployAndMeasure(sys *dsps.System, a *dsps.Assignment, d time.Duration) (engine.Snapshot, int, error) {
	eng := engine.New(sys, engine.DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, a); err != nil {
		return engine.Snapshot{}, 0, err
	}
	deadline := time.After(d)
	delivered := 0
loop:
	//sqpr:noctx bounded by the deadline timer or the engine closing Results
	for {
		select {
		case <-deadline:
			break loop
		case _, ok := <-eng.Results():
			if !ok {
				break loop
			}
			delivered++
		}
	}
	eng.Stop()
	return eng.Monitor().Snapshot(), delivered, nil
}
