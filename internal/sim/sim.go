// Package sim is the simulation harness of §V-A: it submits generated query
// workloads to planners one at a time (or in batches), tracks admission
// curves, resource utilisation and planning times, and contains one runner
// per figure of the paper's evaluation.
//
// The harness is the top of every experiment's call tree, so it is the one
// library package allowed to mint root contexts:
//
//sqpr:ctxroot-package experiment entry points own their lifecycles
package sim

import (
	"context"
	"time"

	"sqpr/internal/bound"
	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/heuristic"
	"sqpr/internal/plan"
	"sqpr/internal/soda"
)

// Submitter is the common planning interface exercised by the harness:
// every planner in this repository implements plan.QueryPlanner, so the
// harness needs no per-baseline adapters.
type Submitter = plan.QueryPlanner

// Recorder wraps any planner with per-call telemetry: planning times and
// the system CPU utilisation observed before each call (the Fig. 6
// measurement protocol). It implements plan.QueryPlanner by delegation.
type Recorder struct {
	P Submitter
	// PlanTimes records the duration of every planning call.
	PlanTimes []time.Duration
	// RepairTimes records the duration of every Repair call.
	RepairTimes []time.Duration
	// UtilisationAt records system CPU utilisation before each call.
	UtilisationAt []float64
	// Errors counts planning calls (Submit or Repair) that returned an
	// error; harness summaries surface a nonzero count instead of silently
	// folding failed calls into the admission numbers.
	Errors int
	sys    *dsps.System
}

// NewRecorder wraps a planner for the harness.
func NewRecorder(sys *dsps.System, p Submitter) *Recorder {
	return &Recorder{P: p, sys: sys}
}

// Submit implements plan.QueryPlanner, recording telemetry around the call.
func (a *Recorder) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	u := a.P.Assignment().ComputeUsage(a.sys)
	total := a.sys.TotalCPU()
	if total > 0 {
		a.UtilisationAt = append(a.UtilisationAt, u.TotalCPU()/total)
	} else {
		a.UtilisationAt = append(a.UtilisationAt, 0)
	}
	res, err := a.P.Submit(ctx, q, opts...)
	// Always append, keeping PlanTimes index-aligned with UtilisationAt
	// even when a call errors (the entry is then the partial call time).
	a.PlanTimes = append(a.PlanTimes, res.PlanTime)
	if err != nil {
		a.Errors++
	}
	return res, err
}

// Remove implements plan.QueryPlanner.
func (a *Recorder) Remove(q dsps.StreamID) error { return a.P.Remove(q) }

// Repair implements plan.QueryPlanner, recording the repair latency.
func (a *Recorder) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	res, err := a.P.Repair(ctx, events, opts...)
	a.RepairTimes = append(a.RepairTimes, res.PlanTime)
	if err != nil {
		a.Errors++
	}
	return res, err
}

// Assignment implements plan.QueryPlanner.
func (a *Recorder) Assignment() *dsps.Assignment { return a.P.Assignment() }

// Admitted implements plan.QueryPlanner.
func (a *Recorder) Admitted(q dsps.StreamID) bool { return a.P.Admitted(q) }

// AdmittedCount implements plan.QueryPlanner.
func (a *Recorder) AdmittedCount() int { return a.P.AdmittedCount() }

// Stats implements plan.QueryPlanner.
func (a *Recorder) Stats() plan.Stats { return a.P.Stats() }

// Curve is one admission series: Satisfied[i] is the cumulative number of
// satisfied queries after Inputs[i] submissions.
type Curve struct {
	Label     string
	Inputs    []int
	Satisfied []int
	// Errors counts submissions that returned an error (solver failures,
	// cancellations) rather than a clean rejection.
	Errors int
}

// RunAdmission submits all queries to the planner, checkpointing the
// cumulative number of satisfied submissions every step submissions.
// Duplicate submissions of an already-admitted query count as satisfied,
// matching the paper's "number of satisfied queries" axis (a user whose
// query is served by reuse is satisfied even though nothing new was
// deployed).
func RunAdmission(label string, p Submitter, queries []dsps.StreamID, step int) Curve {
	if step <= 0 {
		step = 1
	}
	c := Curve{Label: label}
	ctx := context.Background()
	satisfied := 0
	for i, q := range queries {
		res, err := p.Submit(ctx, q)
		switch {
		case err != nil:
			c.Errors++
		case res.Admitted:
			satisfied++
		}
		if (i+1)%step == 0 || i == len(queries)-1 {
			c.Inputs = append(c.Inputs, i+1)
			c.Satisfied = append(c.Satisfied, satisfied)
		}
	}
	return c
}

// CountSatisfied submits all queries and returns the number of satisfied
// submissions (duplicates included; see RunAdmission) together with the
// number of submissions that failed with an error — callers must surface a
// nonzero error count rather than let failed solves pass as rejections.
func CountSatisfied(p Submitter, queries []dsps.StreamID) (satisfied, errs int) {
	ctx := context.Background()
	for _, q := range queries {
		res, err := p.Submit(ctx, q)
		switch {
		case err != nil:
			errs++
		case res.Admitted:
			satisfied++
		}
	}
	return satisfied, errs
}

// Scale holds the experiment dimensions. The paper's absolute scale
// (50–150 hosts, CPLEX, 30 s timeouts) is reduced here because the MILP
// substrate is a hand-rolled solver; DESIGN.md documents the mapping.
type Scale struct {
	Hosts       int
	CPUPerHost  float64
	OutBW       float64
	InBW        float64
	LinkCap     float64
	BaseStreams int
	BaseRate    float64
	Queries     int
	Zipf        float64
	Arities     []int
	Timeout     time.Duration
	MaxCandHost int
	// Workers sets the MILP branch-and-bound parallelism of the SQPR
	// planner (0/1 = serial, deterministic).
	Workers int
	Seed    int64
}

// DefaultScale is the reduced-scale counterpart of the paper's 50-host,
// 500-base-stream simulation.
func DefaultScale() Scale {
	return Scale{
		Hosts:       16,
		CPUPerHost:  7,
		OutBW:       70,
		InBW:        70,
		LinkCap:     30,
		BaseStreams: 100,
		BaseRate:    10,
		Queries:     150,
		Zipf:        1,
		Arities:     []int{2, 3, 4},
		Timeout:     150 * time.Millisecond,
		MaxCandHost: 8,
		Seed:        1,
	}
}

// Env bundles a built system and workload.
type Env struct {
	Sys     *dsps.System
	Queries []dsps.StreamID
}

// BuildEnv constructs the system and workload for a scale.
func BuildEnv(sc Scale) *Env {
	sys := buildSystem(sc)
	w := generate(sys, sc)
	return &Env{Sys: sys, Queries: w}
}

// NewSQPR builds a telemetry-recording SQPR planner at the given timeout.
func (e *Env) NewSQPR(sc Scale, timeout time.Duration) *Recorder {
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	cfg.MaxFreeStreams = 30
	cfg.SolveWorkers = sc.Workers
	return NewRecorder(e.Sys, core.NewPlanner(e.Sys, cfg))
}

// NewHeuristic builds the heuristic baseline.
func (e *Env) NewHeuristic() Submitter { return heuristic.New(e.Sys, core.PaperWeights()) }

// NewBound builds the optimistic-bound planner.
func (e *Env) NewBound() Submitter { return bound.New(e.Sys) }

// NewSODA builds the SODA-like baseline.
func (e *Env) NewSODA() Submitter { return soda.New(e.Sys, core.PaperWeights()) }
