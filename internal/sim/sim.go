// Package sim is the simulation harness of §V-A: it submits generated query
// workloads to planners one at a time (or in batches), tracks admission
// curves, resource utilisation and planning times, and contains one runner
// per figure of the paper's evaluation.
package sim

import (
	"time"

	"sqpr/internal/bound"
	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/heuristic"
	"sqpr/internal/soda"
)

// Submitter is the common planning interface exercised by the harness.
type Submitter interface {
	// Submit plans one query and reports whether it was admitted.
	Submit(q dsps.StreamID) bool
	// AdmittedCount returns the number of admitted queries so far.
	AdmittedCount() int
}

// SQPRAdapter adapts core.Planner (whose Submit returns a rich result) to
// the Submitter interface and accumulates planning-time telemetry.
type SQPRAdapter struct {
	P *core.Planner
	// PlanTimes records the duration of every planning call.
	PlanTimes []time.Duration
	// UtilisationAt records system CPU utilisation before each call.
	UtilisationAt []float64
	sys           *dsps.System
}

// NewSQPRAdapter wraps a core planner for the harness.
func NewSQPRAdapter(sys *dsps.System, p *core.Planner) *SQPRAdapter {
	return &SQPRAdapter{P: p, sys: sys}
}

// Submit implements Submitter.
func (a *SQPRAdapter) Submit(q dsps.StreamID) bool {
	u := a.P.Assignment().ComputeUsage(a.sys)
	total := a.sys.TotalCPU()
	if total > 0 {
		a.UtilisationAt = append(a.UtilisationAt, u.TotalCPU()/total)
	} else {
		a.UtilisationAt = append(a.UtilisationAt, 0)
	}
	res, err := a.P.Submit(q)
	if err != nil {
		return false
	}
	a.PlanTimes = append(a.PlanTimes, res.PlanTime)
	return res.Admitted
}

// AdmittedCount implements Submitter.
func (a *SQPRAdapter) AdmittedCount() int { return a.P.AdmittedCount() }

// Curve is one admission series: Satisfied[i] is the cumulative number of
// satisfied queries after Inputs[i] submissions.
type Curve struct {
	Label     string
	Inputs    []int
	Satisfied []int
}

// RunAdmission submits all queries to the planner, checkpointing the
// cumulative number of satisfied submissions every step submissions.
// Duplicate submissions of an already-admitted query count as satisfied,
// matching the paper's "number of satisfied queries" axis (a user whose
// query is served by reuse is satisfied even though nothing new was
// deployed).
func RunAdmission(label string, p Submitter, queries []dsps.StreamID, step int) Curve {
	if step <= 0 {
		step = 1
	}
	c := Curve{Label: label}
	satisfied := 0
	for i, q := range queries {
		if p.Submit(q) {
			satisfied++
		}
		if (i+1)%step == 0 || i == len(queries)-1 {
			c.Inputs = append(c.Inputs, i+1)
			c.Satisfied = append(c.Satisfied, satisfied)
		}
	}
	return c
}

// CountSatisfied submits all queries and returns the number of satisfied
// submissions (duplicates included; see RunAdmission).
func CountSatisfied(p Submitter, queries []dsps.StreamID) int {
	satisfied := 0
	for _, q := range queries {
		if p.Submit(q) {
			satisfied++
		}
	}
	return satisfied
}

// Scale holds the experiment dimensions. The paper's absolute scale
// (50–150 hosts, CPLEX, 30 s timeouts) is reduced here because the MILP
// substrate is a hand-rolled solver; DESIGN.md documents the mapping.
type Scale struct {
	Hosts       int
	CPUPerHost  float64
	OutBW       float64
	InBW        float64
	LinkCap     float64
	BaseStreams int
	BaseRate    float64
	Queries     int
	Zipf        float64
	Arities     []int
	Timeout     time.Duration
	MaxCandHost int
	Seed        int64
}

// DefaultScale is the reduced-scale counterpart of the paper's 50-host,
// 500-base-stream simulation.
func DefaultScale() Scale {
	return Scale{
		Hosts:       16,
		CPUPerHost:  7,
		OutBW:       70,
		InBW:        70,
		LinkCap:     30,
		BaseStreams: 100,
		BaseRate:    10,
		Queries:     150,
		Zipf:        1,
		Arities:     []int{2, 3, 4},
		Timeout:     150 * time.Millisecond,
		MaxCandHost: 8,
		Seed:        1,
	}
}

// Env bundles a built system and workload.
type Env struct {
	Sys     *dsps.System
	Queries []dsps.StreamID
}

// BuildEnv constructs the system and workload for a scale.
func BuildEnv(sc Scale) *Env {
	sys := buildSystem(sc)
	w := generate(sys, sc)
	return &Env{Sys: sys, Queries: w}
}

// NewSQPR builds an SQPR planner adapter at the given timeout.
func (e *Env) NewSQPR(sc Scale, timeout time.Duration) *SQPRAdapter {
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	cfg.MaxFreeStreams = 30
	return NewSQPRAdapter(e.Sys, core.NewPlanner(e.Sys, cfg))
}

// NewHeuristic builds the heuristic baseline.
func (e *Env) NewHeuristic() Submitter { return heuristic.New(e.Sys, core.PaperWeights()) }

// NewBound builds the optimistic-bound planner.
func (e *Env) NewBound() Submitter { return bound.New(e.Sys) }

// NewSODA builds the SODA-like baseline.
func (e *Env) NewSODA() Submitter { return soda.New(e.Sys, core.PaperWeights()) }
