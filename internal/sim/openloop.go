package sim

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
	"sqpr/internal/stats"
)

// OpenLoopScale parameterises the open-loop arrival experiment: Poisson
// query arrivals at increasing rates are pushed through the admission path
// by a pool of concurrent submitters, once through a plan.Service (which
// coalesces the submits that pile up while a solve runs into joint batch
// solves) and once through a serialized one-at-a-time baseline (a mutex
// around a bare planner — the thread-safety floor a deployment would
// otherwise ship).
type OpenLoopScale struct {
	Scale
	// Rates lists offered loads in queries/second. The arrival generator
	// does not wait for admissions — arrivals queue up for the submitter
	// pool — so outstanding requests are bounded by Submitters, not by the
	// offered rate. For backpressure (ErrQueueFull shedding) to be
	// observable, QueueDepth must therefore be smaller than Submitters, as
	// in DefaultOpenLoopScale; requests shed at the queue are lost (the
	// client gives up), which is what the Shed column counts.
	Rates []float64
	// Submitters is the number of concurrent client goroutines.
	Submitters int
	// QueueDepth and MaxBatch tune the service under test (0 = defaults).
	QueueDepth int
	MaxBatch   int
	// BatchTimeout bounds each coalesced joint solve (see
	// plan.ServiceConfig.BatchTimeout); 0 keeps the planner's batch-scaled
	// default, which gives the coalescing win back to the solver.
	BatchTimeout time.Duration
}

// DefaultOpenLoopScale exercises the Fig-4 workload under increasing
// offered load with 64 concurrent submitters.
func DefaultOpenLoopScale() OpenLoopScale {
	sc := DefaultScale()
	// Per-solve budget low enough that the offered rates straddle the
	// serialized planner's capacity, so the batching win is visible.
	sc.Timeout = 40 * time.Millisecond
	return OpenLoopScale{
		Scale:        sc,
		Rates:        []float64{20, 50, 100, 200},
		Submitters:   64,
		QueueDepth:   48, // < Submitters, so overload sheds instead of parking
		MaxBatch:     8,
		BatchTimeout: sc.Timeout,
	}
}

// OpenLoopPoint is one (mode, rate) measurement.
type OpenLoopPoint struct {
	// Mode is "service" (coalescing front-end) or "serial" (mutex).
	Mode string
	// Rate is the offered load in queries/second.
	Rate float64
	// Submitted counts arrivals; Admitted of those were admitted, Shed were
	// rejected with ErrQueueFull before planning (service mode only).
	Submitted, Admitted, Shed int
	// Errors counts submissions that failed with a non-queue-full error;
	// their latencies stay in the distribution (the caller waited), but
	// they are reported separately so solver failures cannot hide inside
	// the rejection count.
	Errors int
	// Throughput is planned (non-shed) submissions per second of wall time.
	Throughput float64
	// P50, P95, P99 and Max summarise per-request latency (arrival to
	// admission verdict, including queueing).
	P50, P95, P99, Max time.Duration
	// MeanBatch and MaxBatch report the coalescing achieved (service mode;
	// the serial baseline is always 1).
	MeanBatch float64
	MaxBatch  int
}

// OpenLoopResult pairs the service and serial series across rates.
type OpenLoopResult struct {
	Points []OpenLoopPoint
}

// serialFrontEnd is the baseline admission path: a mutex around a bare
// planner, one solve per submission, no coalescing.
type serialFrontEnd struct {
	mu sync.Mutex
	p  plan.QueryPlanner
}

func (s *serialFrontEnd) submit(ctx context.Context, q dsps.StreamID) (plan.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Submit(ctx, q)
}

// OpenLoop runs the open-loop arrival experiment: for each offered rate it
// replays the same generated workload as a Poisson arrival process against
// both admission paths and reports throughput, latency percentiles and the
// coalesced batch sizes. Cancelling ctx stops the arrival generator; the
// submitter pool drains the queries already queued (a graceful drain, not
// an abort), and the partial series collected so far is returned.
func OpenLoop(ctx context.Context, sc OpenLoopScale) OpenLoopResult {
	if sc.Submitters <= 0 {
		sc.Submitters = 64
	}
	var res OpenLoopResult
	for _, rate := range sc.Rates {
		if ctx.Err() != nil {
			break
		}
		res.Points = append(res.Points, runOpenLoop(ctx, sc, rate, "service"))
		res.Points = append(res.Points, runOpenLoop(ctx, sc, rate, "serial"))
	}
	return res
}

func runOpenLoop(ctx context.Context, sc OpenLoopScale, rate float64, mode string) OpenLoopPoint {
	env := BuildEnv(sc.Scale)
	rec := env.NewSQPR(sc.Scale, sc.Timeout)

	var svc *plan.Service
	serial := &serialFrontEnd{p: rec}
	if mode == "service" {
		svc = plan.NewService(rec, plan.ServiceConfig{
			QueueDepth:   sc.QueueDepth,
			MaxBatch:     sc.MaxBatch,
			BatchTimeout: sc.BatchTimeout,
		})
	}

	// The arrival process: one generator goroutine hands queries to the
	// submitter pool with exponential inter-arrival gaps (Poisson arrivals
	// at the offered rate). The buffer depth of arrivals makes the loop
	// open: the generator never waits for the planner. Each arrival is
	// timestamped at generation, so latency includes the time spent waiting
	// for a free submitter — without it, overload latency would be
	// systematically understated (coordinated omission).
	type arrival struct {
		q    dsps.StreamID
		born time.Time
	}
	arrivals := make(chan arrival, len(env.Queries))
	// Arrival jitter uses a private generator seeded from the experiment
	// config (xor-tagged against the workload stream); the global math/rand
	// state is never used, so a run is reproducible from its seed.
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x0a71))
	generated := make(chan int, 1)
	go func() {
		defer close(arrivals)
		n := 0
		for _, q := range env.Queries {
			if ctx.Err() != nil {
				break // stop offering load; the pool drains what's queued
			}
			arrivals <- arrival{q: q, born: time.Now()}
			n++
			time.Sleep(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		}
		generated <- n
	}()

	var (
		mu        sync.Mutex
		latencies []float64
		admitted  int
		shed      int
		errCount  int
	)
	// Queued arrivals are drained even after ctx is cancelled (graceful
	// shutdown finishes accepted work), so the submissions themselves run
	// under a background context rather than the cancellable one.
	//sqpr:ctxroot graceful drain outlives the run's cancellation
	submitCtx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < sc.Submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range arrivals {
				var (
					r   plan.Result
					err error
				)
				if svc != nil {
					r, err = svc.Submit(submitCtx, a.q)
				} else {
					r, err = serial.submit(submitCtx, a.q)
				}
				lat := time.Since(a.born)
				mu.Lock()
				if err != nil && isQueueFull(err) {
					// Shed requests fail in microseconds and never reach the
					// planner; folding them into the latency distribution
					// would let backpressure masquerade as low latency. They
					// are counted in their own column instead.
					shed++
				} else {
					latencies = append(latencies, lat.Seconds())
					if err != nil {
						errCount++
					} else if r.Admitted {
						admitted++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	offered := <-generated

	pt := OpenLoopPoint{
		Mode: mode, Rate: rate,
		Submitted: offered, Admitted: admitted, Shed: shed,
		Errors:    errCount,
		MeanBatch: 1, MaxBatch: 1,
	}
	if elapsed > 0 {
		// Shed requests never reached the planner; counting them would
		// credit backpressure as throughput, so the numerator is planned
		// submissions only.
		pt.Throughput = float64(offered-shed) / elapsed.Seconds()
	}
	cdf := stats.NewCDF(latencies)
	pt.P50 = secs(cdf.Quantile(0.50))
	pt.P95 = secs(cdf.Quantile(0.95))
	pt.P99 = secs(cdf.Quantile(0.99))
	pt.Max = secs(cdf.Quantile(1))
	if svc != nil {
		svc.Close()
		ss := svc.ServiceStats()
		if ss.Solves > 0 {
			pt.MeanBatch = float64(ss.BatchedSubmits) / float64(ss.Solves)
		}
		pt.MaxBatch = ss.MaxBatch
	}
	return pt
}

func isQueueFull(err error) bool {
	return errors.Is(err, plan.ErrQueueFull)
}

func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
