package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// ChurnScale extends the experiment scale with host-churn parameters: in
// each step a Poisson-distributed number of up hosts fail and a Poisson-
// distributed number of down hosts recover, and the planner's Repair is
// asked to keep the admitted workload alive with minimal migration.
type ChurnScale struct {
	Scale
	// FailRate is the expected host failures per churn step.
	FailRate float64
	// RecoverRate is the expected host recoveries per churn step.
	RecoverRate float64
	// Steps is the number of churn steps after the workload is planned.
	Steps int
	// MaxDown caps simultaneously down hosts, so the system never loses
	// more than a bounded fraction of its capacity at once.
	MaxDown int
}

// DefaultChurnScale is the reduced-scale churn counterpart of the paper's
// simulation setup.
func DefaultChurnScale() ChurnScale {
	return ChurnScale{
		Scale:       DefaultScale(),
		FailRate:    0.6,
		RecoverRate: 0.5,
		Steps:       20,
		MaxDown:     4,
	}
}

// ChurnResult aggregates one churn run.
type ChurnResult struct {
	// Submitted and AdmittedInitial describe the pre-churn workload.
	Submitted, AdmittedInitial int
	// Failures and Recoveries count the host events that fired.
	Failures, Recoveries int
	// RepairCalls counts Repair invocations (one per step with events).
	RepairCalls int
	// Affected counts query invalidations across all repairs; Kept of
	// those stayed admitted, Dropped lost their admission.
	Affected, Kept, Dropped int
	// Resubmitted and Readmitted track dropped queries retried after a
	// recovery and how many came back.
	Resubmitted, Readmitted int
	// Migrated counts operators repair moved between surviving hosts.
	Migrated int
	// RepairAvg and RepairMax summarise repair latency.
	RepairAvg, RepairMax time.Duration
	// FinalAdmitted and FinalDown describe the end state.
	FinalAdmitted, FinalDown int
}

// Churn runs the host-churn experiment on the SQPR planner: plan the whole
// workload, then alternate Poisson failures and recoveries for Steps steps,
// repairing after each and resubmitting dropped queries whenever capacity
// returns. Cancelling ctx ends the run gracefully at the next query or
// churn-step boundary; the partial result is still internally consistent
// and is returned without error.
func Churn(ctx context.Context, cs ChurnScale) (ChurnResult, error) {
	var res ChurnResult
	env := BuildEnv(cs.Scale)
	rec := env.NewSQPR(cs.Scale, cs.Timeout)
	for _, q := range env.Queries {
		if ctx.Err() != nil {
			break
		}
		if _, err := rec.Submit(ctx, q); err != nil {
			if ctx.Err() != nil {
				break // cancellation aborted the solve: graceful stop
			}
			return res, err
		}
	}
	res.Submitted = len(env.Queries)
	res.AdmittedInitial = rec.AdmittedCount()

	// Churn draws from a private generator seeded from the experiment
	// config (xor-tagged so it cannot collide with the workload stream of
	// the same seed). No code in this module touches the global math/rand
	// state: runs are reproducible from Scale.Seed alone and concurrent
	// experiments cannot perturb each other.
	rng := rand.New(rand.NewSource(cs.Seed ^ 0x5ee1))
	dropped := make(map[dsps.StreamID]bool)
	for step := 0; step < cs.Steps; step++ {
		if ctx.Err() != nil {
			break
		}
		var events []plan.Event
		recovering := false

		down := env.Sys.DownHosts()
		for i := 0; i < poisson(rng, cs.RecoverRate) && len(down) > 0; i++ {
			pick := rng.Intn(len(down))
			events = append(events, plan.RecoverHost(down[pick]))
			down = append(down[:pick], down[pick+1:]...)
			res.Recoveries++
			recovering = true
		}
		var up []dsps.HostID
		for h := 0; h < env.Sys.NumHosts(); h++ {
			if env.Sys.Hosts[h].State == dsps.HostUp {
				up = append(up, dsps.HostID(h))
			}
		}
		budget := cs.MaxDown - len(down)
		for i := 0; i < poisson(rng, cs.FailRate) && len(up) > 0 && budget > 0; i++ {
			pick := rng.Intn(len(up))
			events = append(events, plan.FailHost(up[pick]))
			up = append(up[:pick], up[pick+1:]...)
			res.Failures++
			budget--
		}
		if len(events) == 0 {
			continue
		}
		if ctx.Err() != nil {
			break
		}

		rr, err := rec.Repair(ctx, events)
		if err != nil {
			if ctx.Err() != nil {
				break // cancellation aborted the repair: graceful stop
			}
			return res, fmt.Errorf("sim: churn step %d repair: %w", step, err)
		}
		res.RepairCalls++
		res.Affected += len(rr.Affected)
		res.Kept += len(rr.Kept)
		res.Dropped += len(rr.Dropped)
		res.Migrated += rr.Migrated
		for _, q := range rr.Dropped {
			dropped[q] = true
		}

		// Capacity came back: give the dropped queries another chance —
		// recovering queries are planned against the operators already
		// running, exactly like fresh submissions (§IV).
		if recovering && len(dropped) > 0 {
			var retry []dsps.StreamID
			for q := range dropped {
				retry = append(retry, q)
			}
			sortStreamIDs(retry)
			for _, q := range retry {
				if ctx.Err() != nil {
					break
				}
				r, err := rec.Submit(ctx, q)
				if err != nil {
					if ctx.Err() != nil {
						break // cancellation aborted the solve: graceful stop
					}
					return res, fmt.Errorf("sim: churn resubmit %d: %w", q, err)
				}
				res.Resubmitted++
				if r.Admitted {
					res.Readmitted++
					delete(dropped, q)
				}
			}
		}
	}

	if err := rec.Assignment().Validate(env.Sys); err != nil {
		return res, fmt.Errorf("sim: churn left infeasible state: %w", err)
	}
	res.FinalAdmitted = rec.AdmittedCount()
	res.FinalDown = len(env.Sys.DownHosts())
	var sum time.Duration
	for _, d := range rec.RepairTimes {
		sum += d
		if d > res.RepairMax {
			res.RepairMax = d
		}
	}
	if len(rec.RepairTimes) > 0 {
		res.RepairAvg = sum / time.Duration(len(rec.RepairTimes))
	}
	return res, nil
}

// poisson draws from a Poisson distribution via Knuth's method (the rates
// used here are well below 30, where the method is exact and fast).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	//sqpr:noctx bounded: returns once p decays below l or k reaches 50
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k >= 50 {
			return k
		}
	}
}

func sortStreamIDs(s []dsps.StreamID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
