package sim

import (
	"context"
	"testing"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// fakeSubmitter admits everything and counts distinct queries.
type fakeSubmitter struct{ seen map[dsps.StreamID]bool }

func (f *fakeSubmitter) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	if f.seen == nil {
		f.seen = map[dsps.StreamID]bool{}
	}
	f.seen[q] = true
	return plan.Result{Admitted: true}, nil
}

func (f *fakeSubmitter) Remove(q dsps.StreamID) error { delete(f.seen, q); return nil }

func (f *fakeSubmitter) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	return plan.RepairResult{Result: plan.Result{Admitted: true}}, nil
}

func (f *fakeSubmitter) Assignment() *dsps.Assignment { return dsps.NewAssignment() }

func (f *fakeSubmitter) Admitted(q dsps.StreamID) bool { return f.seen[q] }

func (f *fakeSubmitter) AdmittedCount() int { return len(f.seen) }

func (f *fakeSubmitter) Stats() plan.Stats { return plan.Stats{} }

func TestCountSatisfiedIncludesDuplicates(t *testing.T) {
	f := &fakeSubmitter{}
	queries := []dsps.StreamID{1, 2, 1, 1, 3}
	if got := CountSatisfied(f, queries); got != 5 {
		t.Fatalf("CountSatisfied = %d, want 5 (duplicates count)", got)
	}
	if f.AdmittedCount() != 3 {
		t.Fatalf("distinct count = %d, want 3", f.AdmittedCount())
	}
}

func TestRunAdmissionCountsSubmissions(t *testing.T) {
	f := &fakeSubmitter{}
	queries := []dsps.StreamID{7, 7, 7, 7}
	c := RunAdmission("fake", f, queries, 2)
	if len(c.Satisfied) == 0 || c.Satisfied[len(c.Satisfied)-1] != 4 {
		t.Fatalf("curve %v, want final 4", c.Satisfied)
	}
}
