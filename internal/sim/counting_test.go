package sim

import (
	"context"
	"errors"
	"testing"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
)

// fakeSubmitter admits everything and counts distinct queries.
type fakeSubmitter struct{ seen map[dsps.StreamID]bool }

func (f *fakeSubmitter) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	if f.seen == nil {
		f.seen = map[dsps.StreamID]bool{}
	}
	f.seen[q] = true
	return plan.Result{Admitted: true}, nil
}

func (f *fakeSubmitter) Remove(q dsps.StreamID) error { delete(f.seen, q); return nil }

func (f *fakeSubmitter) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	return plan.RepairResult{Result: plan.Result{Admitted: true}}, nil
}

func (f *fakeSubmitter) Assignment() *dsps.Assignment { return dsps.NewAssignment() }

func (f *fakeSubmitter) Admitted(q dsps.StreamID) bool { return f.seen[q] }

func (f *fakeSubmitter) AdmittedCount() int { return len(f.seen) }

func (f *fakeSubmitter) Stats() plan.Stats { return plan.Stats{} }

func TestCountSatisfiedIncludesDuplicates(t *testing.T) {
	f := &fakeSubmitter{}
	queries := []dsps.StreamID{1, 2, 1, 1, 3}
	got, errs := CountSatisfied(f, queries)
	if got != 5 {
		t.Fatalf("CountSatisfied = %d, want 5 (duplicates count)", got)
	}
	if errs != 0 {
		t.Fatalf("CountSatisfied errors = %d, want 0", errs)
	}
	if f.AdmittedCount() != 3 {
		t.Fatalf("distinct count = %d, want 3", f.AdmittedCount())
	}
}

// failingSubmitter errors on every odd stream ID and admits the rest.
type failingSubmitter struct{ fakeSubmitter }

func (f *failingSubmitter) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	if q%2 == 1 {
		return plan.Result{}, errors.New("solver exploded")
	}
	return f.fakeSubmitter.Submit(ctx, q, opts...)
}

// TestErrorCountsSurfaceFailures asserts failed submissions are tallied
// instead of silently folded into the rejection count — the harness-wide
// contract behind every Errors field.
func TestErrorCountsSurfaceFailures(t *testing.T) {
	queries := []dsps.StreamID{1, 2, 3, 4}
	got, errs := CountSatisfied(&failingSubmitter{}, queries)
	if got != 2 || errs != 2 {
		t.Fatalf("CountSatisfied = (%d, %d), want (2, 2)", got, errs)
	}
	c := RunAdmission("failing", &failingSubmitter{}, queries, 2)
	if c.Errors != 2 {
		t.Fatalf("RunAdmission errors = %d, want 2", c.Errors)
	}
	if c.Satisfied[len(c.Satisfied)-1] != 2 {
		t.Fatalf("RunAdmission satisfied %v, want final 2", c.Satisfied)
	}
}

func TestRunAdmissionCountsSubmissions(t *testing.T) {
	f := &fakeSubmitter{}
	queries := []dsps.StreamID{7, 7, 7, 7}
	c := RunAdmission("fake", f, queries, 2)
	if len(c.Satisfied) == 0 || c.Satisfied[len(c.Satisfied)-1] != 4 {
		t.Fatalf("curve %v, want final 4", c.Satisfied)
	}
}
