package sim

import (
	"testing"

	"sqpr/internal/dsps"
)

// fakeSubmitter admits everything and counts distinct queries.
type fakeSubmitter struct{ seen map[dsps.StreamID]bool }

func (f *fakeSubmitter) Submit(q dsps.StreamID) bool {
	if f.seen == nil {
		f.seen = map[dsps.StreamID]bool{}
	}
	f.seen[q] = true
	return true
}

func (f *fakeSubmitter) AdmittedCount() int { return len(f.seen) }

func TestCountSatisfiedIncludesDuplicates(t *testing.T) {
	f := &fakeSubmitter{}
	queries := []dsps.StreamID{1, 2, 1, 1, 3}
	if got := CountSatisfied(f, queries); got != 5 {
		t.Fatalf("CountSatisfied = %d, want 5 (duplicates count)", got)
	}
	if f.AdmittedCount() != 3 {
		t.Fatalf("distinct count = %d, want 3", f.AdmittedCount())
	}
}

func TestRunAdmissionCountsSubmissions(t *testing.T) {
	f := &fakeSubmitter{}
	queries := []dsps.StreamID{7, 7, 7, 7}
	c := RunAdmission("fake", f, queries, 2)
	if len(c.Satisfied) == 0 || c.Satisfied[len(c.Satisfied)-1] != 4 {
		t.Fatalf("curve %v, want final 4", c.Satisfied)
	}
}
