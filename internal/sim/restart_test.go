package sim

import (
	"context"
	"testing"
	"time"
)

// TestRestartScenario runs the crash/restart experiment at a tiny scale
// and checks the recovery invariants: the recovered state is identical to
// the pre-crash planner's, recovery performs zero solves, and the run
// resumes to completion.
func TestRestartScenario(t *testing.T) {
	rs := DefaultRestartScale()
	rs.Hosts = 8
	rs.BaseStreams = 30
	rs.Queries = 30
	rs.Timeout = 60 * time.Millisecond
	rs.MaxCandHost = 6
	rs.CrashAfter = 18
	rs.SnapshotEvery = 4

	res, err := Restart(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != rs.CrashAfter {
		t.Fatalf("submitted %d before crash, want %d", res.Submitted, rs.CrashAfter)
	}
	if res.AdmittedAtCrash == 0 {
		t.Fatal("nothing admitted before the crash")
	}
	if !res.StateMatch {
		t.Fatal("recovered state differs from the pre-crash planner state")
	}
	if res.RecoverySolves != 0 {
		t.Fatalf("recovery ran %d solves, want 0", res.RecoverySolves)
	}
	if res.RecoveredAdmitted != res.AdmittedAtCrash {
		t.Fatalf("recovered %d admitted, want %d", res.RecoveredAdmitted, res.AdmittedAtCrash)
	}
	if !res.UsedSnapshot {
		t.Fatalf("no snapshot used despite SnapshotEvery=%d over %d submits", rs.SnapshotEvery, rs.CrashAfter)
	}
	if res.ResumeSubmitted != rs.Queries-rs.CrashAfter {
		t.Fatalf("resumed %d, want %d", res.ResumeSubmitted, rs.Queries-rs.CrashAfter)
	}
	if res.FinalAdmitted < res.RecoveredAdmitted {
		t.Fatalf("final admitted %d below recovered %d", res.FinalAdmitted, res.RecoveredAdmitted)
	}
}

// TestRestartGracefulCancel checks a cancelled context ends the run early
// with a valid partial result instead of an error.
func TestRestartGracefulCancel(t *testing.T) {
	rs := DefaultRestartScale()
	rs.Hosts = 8
	rs.BaseStreams = 30
	rs.Queries = 30
	rs.Timeout = 60 * time.Millisecond
	rs.MaxCandHost = 6

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Restart(ctx, rs)
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if res.Submitted != 0 || res.FinalAdmitted != 0 {
		t.Fatalf("cancelled-before-start run did work: %+v", res)
	}
}
