package sim

import (
	"context"

	"sqpr/internal/core"
	"sqpr/internal/costmodel"
	"sqpr/internal/dsps"
)

// AdaptiveResult reports the §IV-B adaptive-replanning experiment: how many
// queries survive a workload surge once the planner re-plans the drifted
// ones with corrected costs.
type AdaptiveResult struct {
	AdmittedBefore int
	// Drifted is the number of queries whose supporting operators drifted.
	Drifted int
	// Readmitted is how many drifted queries found a new placement.
	Readmitted     int
	AdmittedAfter  int
	MaxCPUBefore   float64
	MaxCPUAfter    float64
	ShortageBefore int // hosts above 90% CPU before replanning
	ShortageAfter  int
}

// Adaptive runs the experiment: plan the workload, inflate the cost of the
// most-loaded operators by surgeFactor (as the resource monitor would
// report), detect the drift with the cost model, and re-plan the affected
// queries.
func Adaptive(sc Scale, surgeFactor float64, surgeOps int) (AdaptiveResult, error) {
	var res AdaptiveResult
	env := BuildEnv(sc)
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = sc.Timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	p := core.NewPlanner(env.Sys, cfg)
	ctx := context.Background()
	for _, q := range env.Queries {
		if _, err := p.Submit(ctx, q); err != nil {
			return res, err
		}
	}
	res.AdmittedBefore = p.AdmittedCount()
	before := p.Assignment().ComputeUsage(env.Sys)
	res.MaxCPUBefore = before.MaxCPU()
	res.ShortageBefore = len(costmodel.ShortageHosts(env.Sys, before, 0.9))

	// Pick the most expensive placed operators and synthesise monitoring
	// observations with surged costs.
	type placed struct {
		op   dsps.OperatorID
		cost float64
	}
	var candidates []placed
	seen := map[dsps.OperatorID]bool{}
	for pl, on := range p.Assignment().Ops {
		if on && !seen[pl.Op] {
			seen[pl.Op] = true
			candidates = append(candidates, placed{pl.Op, env.Sys.Operators[pl.Op].Cost})
		}
	}
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if candidates[j].cost > candidates[i].cost ||
				(candidates[j].cost == candidates[i].cost && candidates[j].op < candidates[i].op) {
				candidates[i], candidates[j] = candidates[j], candidates[i]
			}
		}
	}
	if surgeOps > len(candidates) {
		surgeOps = len(candidates)
	}
	var obs []costmodel.Observation
	for _, c := range candidates[:surgeOps] {
		obs = append(obs, costmodel.Observation{Op: c.op, Cost: c.cost * surgeFactor})
	}
	reports := costmodel.DetectDrift(env.Sys, obs, 0.2)
	driftedOps := make(map[dsps.OperatorID]float64, len(reports))
	for _, r := range reports {
		driftedOps[r.Op] = r.Observed
	}
	queries := p.DriftedQueries(driftedOps, 0.2)
	res.Drifted = len(queries)

	// Update the cost model to the observed reality, then re-plan.
	for op, observed := range driftedOps {
		env.Sys.Operators[op].Cost = observed
	}
	results, err := p.Replan(ctx, queries)
	if err != nil {
		return res, err
	}
	for _, r := range results {
		if r.Admitted {
			res.Readmitted++
		}
	}
	res.AdmittedAfter = p.AdmittedCount()
	after := p.Assignment().ComputeUsage(env.Sys)
	res.MaxCPUAfter = after.MaxCPU()
	res.ShortageAfter = len(costmodel.ShortageHosts(env.Sys, after, 0.9))
	if err := p.Assignment().Validate(env.Sys); err != nil {
		return res, err
	}
	return res, nil
}
