package sim

import (
	"context"
	"testing"
	"time"
)

// tinyScale keeps simulation tests fast.
func tinyScale() Scale {
	sc := DefaultScale()
	sc.Hosts = 6
	sc.BaseStreams = 30
	sc.Queries = 20
	sc.Timeout = 60 * time.Millisecond
	sc.MaxCandHost = 6
	sc.Arities = []int{2, 3}
	return sc
}

func TestRunAdmissionCurve(t *testing.T) {
	sc := tinyScale()
	env := BuildEnv(sc)
	c := RunAdmission("sqpr", env.NewSQPR(sc, sc.Timeout), env.Queries, 5)
	if len(c.Inputs) == 0 {
		t.Fatal("no checkpoints")
	}
	if c.Inputs[len(c.Inputs)-1] != sc.Queries {
		t.Fatalf("final checkpoint %d != %d", c.Inputs[len(c.Inputs)-1], sc.Queries)
	}
	for i := 1; i < len(c.Satisfied); i++ {
		if c.Satisfied[i] < c.Satisfied[i-1] {
			t.Fatal("admission curve decreased (queries were dropped)")
		}
	}
	if c.Satisfied[len(c.Satisfied)-1] == 0 {
		t.Fatal("nothing admitted")
	}
}

func TestBoundDominatesSQPRAndHeuristic(t *testing.T) {
	sc := tinyScale()

	envB := BuildEnv(sc)
	b := envB.NewBound()
	for _, q := range envB.Queries {
		b.Submit(context.Background(), q)
	}

	envS := BuildEnv(sc)
	s := envS.NewSQPR(sc, sc.Timeout)
	for _, q := range envS.Queries {
		s.Submit(context.Background(), q)
	}

	envH := BuildEnv(sc)
	h := envH.NewHeuristic()
	for _, q := range envH.Queries {
		h.Submit(context.Background(), q)
	}

	if s.AdmittedCount() > b.AdmittedCount() {
		t.Fatalf("SQPR (%d) exceeded the optimistic bound (%d)", s.AdmittedCount(), b.AdmittedCount())
	}
	if h.AdmittedCount() > b.AdmittedCount() {
		t.Fatalf("heuristic (%d) exceeded the optimistic bound (%d)", h.AdmittedCount(), b.AdmittedCount())
	}
}

func TestRecorderTelemetry(t *testing.T) {
	sc := tinyScale()
	env := BuildEnv(sc)
	ad := env.NewSQPR(sc, sc.Timeout)
	for _, q := range env.Queries[:5] {
		ad.Submit(context.Background(), q)
	}
	if len(ad.PlanTimes) != 5 || len(ad.UtilisationAt) != 5 {
		t.Fatalf("telemetry lengths: %d/%d", len(ad.PlanTimes), len(ad.UtilisationAt))
	}
	if ad.UtilisationAt[0] != 0 {
		t.Fatalf("initial utilisation %v, want 0", ad.UtilisationAt[0])
	}
}

func TestFig4cOverlapImprovesAdmission(t *testing.T) {
	sc := tinyScale()
	sc.Queries = 16
	res := Fig4c(sc, []float64{0, 1.5}, []int{12})
	if len(res.Satisfied) != 1 || len(res.Satisfied[0]) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	// Not a strict theorem at tiny scale, but gross violations indicate a
	// broken reuse path: skew must not decimate admissions.
	lo, hi := res.Satisfied[0][0], res.Satisfied[0][1]
	if hi < lo/2 {
		t.Fatalf("high overlap admitted %d vs %d at uniform — reuse path broken", hi, lo)
	}
}

func TestFig5aMoreHostsMoreQueries(t *testing.T) {
	sc := tinyScale()
	sc.Queries = 16
	res := Fig5a(sc, []int{3, 8})
	if len(res.SQPR) != 2 || len(res.Bound) != 2 {
		t.Fatalf("result shape: %+v", res)
	}
	if res.SQPR[1] < res.SQPR[0] {
		t.Fatalf("more hosts admitted fewer queries: %v", res.SQPR)
	}
	for i := range res.SQPR {
		if res.SQPR[i] > res.Bound[i] {
			t.Fatalf("SQPR above bound at %d hosts", res.X[i])
		}
	}
}

func TestTimedRunProducesSamples(t *testing.T) {
	sc := tinyScale()
	sc.Queries = 10
	avg, n, errs := timedRun(sc)
	if errs != 0 {
		t.Fatalf("timedRun errors = %d, want 0", errs)
	}
	if n == 0 {
		t.Fatal("no timing samples")
	}
	if avg <= 0 {
		t.Fatalf("average plan time %v", avg)
	}
}

func TestUtilisationCDFs(t *testing.T) {
	sc := tinyScale()
	env := BuildEnv(sc)
	ad := env.NewSQPR(sc, sc.Timeout)
	for _, q := range env.Queries[:8] {
		ad.Submit(context.Background(), q)
	}
	cpu, net := UtilisationCDFs(env.Sys, ad.Assignment())
	if cpu.Len() != sc.Hosts || net.Len() != sc.Hosts {
		t.Fatalf("CDF sizes: %d/%d", cpu.Len(), net.Len())
	}
	if cpu.Quantile(1) > 100+1e-9 {
		t.Fatalf("CPU utilisation above 100%%: %v", cpu.Quantile(1))
	}
}

func TestDeployAndMeasure(t *testing.T) {
	sc := tinyScale()
	sc.Queries = 6
	env := BuildEnv(sc)
	ad := env.NewSQPR(sc, sc.Timeout)
	for _, q := range env.Queries {
		ad.Submit(context.Background(), q)
	}
	snap, _, err := DeployAndMeasure(env.Sys, ad.Assignment(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var work float64
	for _, c := range snap.CPUWork {
		work += c
	}
	if ad.AdmittedCount() > 0 && work == 0 {
		t.Fatal("engine performed no work for a non-empty plan")
	}
}

func TestFig7SmokeTest(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment study in -short mode")
	}
	ds := DefaultDeployScale()
	ds.Hosts = 8
	ds.BaseStreams = 40
	ds.WaveSize = 10
	ds.Waves = 2
	ds.Timeout = 60 * time.Millisecond
	res := Fig7(context.Background(), ds)
	if len(res.Inputs) != 2 {
		t.Fatalf("waves: %v", res.Inputs)
	}
	if res.SQPR[1] < res.SQPR[0] || res.SODA[1] < res.SODA[0] {
		t.Fatal("admission counts decreased across waves")
	}
	if res.CPULowSQPR == nil || res.CPULowSODA == nil {
		t.Fatal("missing low-checkpoint CDFs")
	}
}
