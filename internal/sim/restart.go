package sim

import (
	"context"
	"fmt"

	"sqpr/internal/core"
	"sqpr/internal/plan"
	"sqpr/internal/wal"
	"sqpr/internal/wal/walfault"
)

// RestartScale parameterises the crash/restart scenario: the workload is
// submitted through a durable admission service journaling to a write-ahead
// log; after CrashAfter queries the process "crashes" (the service is
// abandoned and only the durable file image survives), a fresh planner
// recovers from the log, and the remaining queries resume on the recovered
// service.
type RestartScale struct {
	Scale
	// CrashAfter is the number of queries submitted before the crash.
	CrashAfter int
	// SnapshotEvery is the service's journal compaction interval
	// (records per snapshot; 0 = the service default).
	SnapshotEvery int
}

// DefaultRestartScale crashes mid-workload with frequent snapshots so the
// run exercises both snapshot and tail-record replay.
func DefaultRestartScale() RestartScale {
	return RestartScale{Scale: DefaultScale(), CrashAfter: 75, SnapshotEvery: 16}
}

// RestartResult aggregates one crash/restart run.
type RestartResult struct {
	// Submitted queries before the crash; AdmittedAtCrash of those were
	// admitted (and acknowledged, hence journaled).
	Submitted, AdmittedAtCrash int
	// UsedSnapshot reports whether recovery seeded from a snapshot;
	// ReplayedRecords is the number of journal records applied on top.
	UsedSnapshot    bool
	ReplayedRecords int
	// RecoveredAdmitted is the admitted count after recovery and
	// RecoverySolves the number of planning solves recovery needed
	// (always 0: replay is pure state application).
	RecoveredAdmitted, RecoverySolves int
	// StateMatch reports whether the recovered planner state — admitted
	// set, placements, host availability — is identical to the pre-crash
	// planner's.
	StateMatch bool
	// ResumeSubmitted queries were submitted after recovery;
	// FinalAdmitted is the admitted count at the end.
	ResumeSubmitted, FinalAdmitted int
}

func restartPlanner(env *Env, sc Scale) *core.Planner {
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = sc.Timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	cfg.MaxFreeStreams = 30
	cfg.SolveWorkers = sc.Workers
	return core.NewPlanner(env.Sys, cfg)
}

// Restart runs the crash/restart scenario on the SQPR planner. Cancelling
// ctx stops the run gracefully at the next query boundary; the partial
// result is still valid.
func Restart(ctx context.Context, rs RestartScale) (RestartResult, error) {
	var res RestartResult
	env := BuildEnv(rs.Scale)
	fs := walfault.New()
	scfg := plan.ServiceConfig{SnapshotEvery: rs.SnapshotEvery}

	p1 := restartPlanner(env, rs.Scale)
	svc, _, err := plan.OpenService(p1, scfg, fs, wal.Options{})
	if err != nil {
		return res, fmt.Errorf("sim: opening durable service: %w", err)
	}
	crashAt := rs.CrashAfter
	if crashAt > len(env.Queries) {
		crashAt = len(env.Queries)
	}
	for _, q := range env.Queries[:crashAt] {
		if ctx.Err() != nil {
			break
		}
		if _, err := svc.Submit(ctx, q); err != nil {
			if ctx.Err() != nil {
				break // cancellation aborted the solve: graceful stop
			}
			svc.Close()
			return res, fmt.Errorf("sim: restart submit %d: %w", q, err)
		}
		res.Submitted++
	}
	res.AdmittedAtCrash = svc.AdmittedCount()
	want := p1.ExportState()

	// Crash: only what the log made durable survives. The old service is
	// closed afterwards purely to release its goroutine — the recovered
	// image was already taken.
	img := fs.Reopen()
	svc.Close()
	if ctx.Err() != nil {
		return res, nil
	}

	env2 := BuildEnv(rs.Scale)
	p2 := restartPlanner(env2, rs.Scale)
	svc2, recInfo, err := plan.OpenService(p2, scfg, img, wal.Options{})
	if err != nil {
		return res, fmt.Errorf("sim: recovering durable service: %w", err)
	}
	defer svc2.Close()
	res.UsedSnapshot = recInfo.UsedSnapshot
	res.ReplayedRecords = recInfo.Records
	res.RecoveredAdmitted = recInfo.Admitted
	res.RecoverySolves = p2.Stats().Submissions
	res.StateMatch = p2.ExportState().Equal(want)

	for _, q := range env2.Queries[crashAt:] {
		if ctx.Err() != nil {
			break
		}
		if _, err := svc2.Submit(ctx, q); err != nil {
			if ctx.Err() != nil {
				break // cancellation aborted the solve: graceful stop
			}
			return res, fmt.Errorf("sim: resume submit %d: %w", q, err)
		}
		res.ResumeSubmitted++
	}
	res.FinalAdmitted = svc2.AdmittedCount()
	return res, nil
}
