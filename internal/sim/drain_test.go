package sim

import (
	"context"
	"testing"
	"time"
)

// TestRollingDrainScenario runs the rolling-drain experiment at a tiny
// scale and checks its acceptance invariants: every drained host comes
// back, no admission is lost or dropped along the way, the API answers
// every probe while the roll is underway, and the journal recovers the
// final admitted set.
func TestRollingDrainScenario(t *testing.T) {
	dsc := DefaultDrainScale()
	dsc.Hosts = 8
	dsc.BaseStreams = 30
	dsc.Queries = 20
	dsc.Timeout = 60 * time.Millisecond
	dsc.MaxCandHost = 6
	dsc.DrainHosts = 3

	res, err := RollingDrain(context.Background(), dsc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != dsc.Queries {
		t.Fatalf("submitted %d over the API, want %d", res.Submitted, dsc.Queries)
	}
	if res.Admitted == 0 {
		t.Fatal("nothing admitted before the roll")
	}
	if res.HostsDrained != dsc.DrainHosts {
		t.Fatalf("rolled %d hosts, want %d", res.HostsDrained, dsc.DrainHosts)
	}
	if res.LostAdmissions != 0 {
		t.Fatalf("lost %d admissions across the roll, want 0", res.LostAdmissions)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d queries across the roll, want 0 (drain is best-effort evacuation)", res.Dropped)
	}
	if res.ProbeTotal == 0 {
		t.Fatal("the concurrent probe never ran")
	}
	if res.ProbeOK != res.ProbeTotal {
		t.Fatalf("API probes failed during the roll: %d/%d ok", res.ProbeOK, res.ProbeTotal)
	}
	if !res.Durable {
		t.Fatalf("journal recovery holds %d admitted, live daemon ended with a different count", res.RecoveredAdmitted)
	}
	if res.RecoveredAdmitted != res.Admitted {
		t.Fatalf("recovered %d admitted, want %d", res.RecoveredAdmitted, res.Admitted)
	}
}

// TestRollingDrainGracefulCancel checks a cancelled context ends the run
// early with a valid partial result instead of an error.
func TestRollingDrainGracefulCancel(t *testing.T) {
	dsc := DefaultDrainScale()
	dsc.Hosts = 8
	dsc.BaseStreams = 30
	dsc.Queries = 20
	dsc.Timeout = 60 * time.Millisecond
	dsc.MaxCandHost = 6

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RollingDrain(ctx, dsc)
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if res.Submitted != 0 || res.HostsDrained != 0 {
		t.Fatalf("cancelled run did work: %+v", res)
	}
}
