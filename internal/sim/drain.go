package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"sqpr/internal/plan"
	"sqpr/internal/serve"
	"sqpr/internal/wal"
	"sqpr/internal/wal/walfault"
)

// DrainScale parameterises the rolling-drain scenario: the workload is
// admitted through the HTTP control plane of a durable admission service,
// then hosts are drained one at a time through journaled Repair calls —
// the operator's rolling-maintenance loop — while a probe keeps hitting
// the API, asserting the daemon stays responsive and no admission is lost.
type DrainScale struct {
	Scale
	// DrainHosts is how many hosts are rolled through drain → recover.
	DrainHosts int
}

// DefaultDrainScale rolls a quarter of the default cluster.
func DefaultDrainScale() DrainScale {
	return DrainScale{Scale: DefaultScale(), DrainHosts: 4}
}

// DrainResult aggregates one rolling-drain run.
type DrainResult struct {
	// Submitted queries went through POST /v1/submit; Admitted of them
	// were admitted.
	Submitted, Admitted int
	// HostsDrained hosts were drained and recovered, dropping Dropped
	// queries in total and losing LostAdmissions admissions (both must be
	// zero: draining evacuates best-effort, existing placements stay valid).
	HostsDrained, Dropped, LostAdmissions int
	// ProbeOK of ProbeTotal concurrent API probes (GET /readyz +
	// /v1/admitted) succeeded while the roll was underway.
	ProbeOK, ProbeTotal int
	// RecoveredAdmitted is the admitted count a fresh planner recovers
	// from the journal after the daemon exits; Durable reports whether it
	// matches the live final count.
	RecoveredAdmitted int
	Durable           bool
}

// drainAPI is a minimal JSON client for the control plane under test.
type drainAPI struct {
	base   string
	client *http.Client
}

func (a *drainAPI) call(ctx context.Context, method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, data)
	}
	if into != nil {
		return json.Unmarshal(data, into)
	}
	return nil
}

func (a *drainAPI) admittedCount(ctx context.Context) (int, error) {
	var out struct {
		Count int `json:"count"`
	}
	err := a.call(ctx, "GET", "/v1/admitted", nil, &out)
	return out.Count, err
}

// RollingDrain runs the rolling-drain scenario on the SQPR planner behind
// the HTTP control plane. Cancelling ctx stops the run gracefully; the
// partial result is still valid.
func RollingDrain(ctx context.Context, dsc DrainScale) (DrainResult, error) {
	var res DrainResult
	env := BuildEnv(dsc.Scale)
	fs := walfault.New()
	p := restartPlanner(env, dsc.Scale)
	svc, _, err := plan.OpenService(p, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		return res, fmt.Errorf("sim: opening durable service: %w", err)
	}
	srv, err := serve.New(serve.Config{Service: svc, System: env.Sys})
	if err != nil {
		svc.Close()
		return res, fmt.Errorf("sim: building control plane: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return res, fmt.Errorf("sim: listening: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	api := &drainAPI{base: "http://" + ln.Addr().String(), client: &http.Client{}}

	// Admit the workload through the wire, as a client would.
	for _, q := range env.Queries {
		if ctx.Err() != nil {
			break
		}
		var out struct {
			Admitted bool `json:"admitted"`
		}
		if err := api.call(ctx, "POST", "/v1/submit", map[string]any{"query": q}, &out); err != nil {
			if ctx.Err() != nil {
				break
			}
			return res, fmt.Errorf("sim: drain submit %d: %w", q, err)
		}
		res.Submitted++
	}
	res.Admitted, err = api.admittedCount(ctx)
	if err != nil && ctx.Err() == nil {
		return res, fmt.Errorf("sim: reading admitted count: %w", err)
	}

	// Concurrent probe: the API must keep answering while hosts roll.
	var probeOK, probeTotal atomic.Int64
	probeStop := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-probeStop:
				return
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			probeTotal.Add(1)
			var out struct {
				Count int `json:"count"`
			}
			if err := api.call(ctx, "GET", "/readyz", nil, nil); err != nil {
				continue
			}
			if err := api.call(ctx, "GET", "/v1/admitted", nil, &out); err == nil {
				probeOK.Add(1)
			}
		}
	}()

	// Roll: drain each host through a journaled Repair, assert nothing was
	// lost, recover it, move on. Draining evacuates best-effort — existing
	// placements stay valid — so admissions must survive every step.
	nHosts := dsc.DrainHosts
	if nHosts > dsc.Hosts {
		nHosts = dsc.Hosts
	}
	for h := 0; h < nHosts; h++ {
		if ctx.Err() != nil {
			break
		}
		before, err := api.admittedCount(ctx)
		if err != nil {
			break
		}
		var rr struct {
			Admitted bool  `json:"admitted"`
			Dropped  []int `json:"dropped"`
		}
		drain := map[string]any{"events": []map[string]any{{"kind": "drain", "host": h}}}
		if err := api.call(ctx, "POST", "/v1/repair", drain, &rr); err != nil {
			if ctx.Err() != nil {
				break
			}
			return res, fmt.Errorf("sim: draining host %d: %w", h, err)
		}
		res.Dropped += len(rr.Dropped)
		after, err := api.admittedCount(ctx)
		if err != nil {
			break
		}
		if after < before {
			res.LostAdmissions += before - after
		}
		recover := map[string]any{"events": []map[string]any{{"kind": "recover", "host": h}}}
		if err := api.call(ctx, "POST", "/v1/repair", recover, nil); err != nil {
			if ctx.Err() != nil {
				break
			}
			return res, fmt.Errorf("sim: recovering host %d: %w", h, err)
		}
		res.HostsDrained++
	}

	close(probeStop)
	<-probeDone
	res.ProbeOK = int(probeOK.Load())
	res.ProbeTotal = int(probeTotal.Load())

	// Daemon exit path: stop readiness, wait out in-flight requests, flush
	// the journal, close the service.
	//sqpr:ctxroot graceful drain outlives the run's cancellation
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv.StartDrain()
	hs.Shutdown(shutCtx)
	cancel()
	svc.SyncWAL()
	final := svc.AdmittedCount()
	svc.Close()

	// Durability check: a fresh planner recovered from the journal image
	// must hold exactly the admissions the daemon ended with.
	env2 := BuildEnv(dsc.Scale)
	p2 := restartPlanner(env2, dsc.Scale)
	svc2, rs, err := plan.OpenService(p2, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		return res, fmt.Errorf("sim: recovering after drain run: %w", err)
	}
	svc2.Close()
	res.RecoveredAdmitted = rs.Admitted
	res.Durable = rs.Admitted == final
	return res, nil
}
