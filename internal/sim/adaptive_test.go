package sim

import (
	"testing"
)

func TestAdaptiveExperiment(t *testing.T) {
	sc := tinyScale()
	sc.Queries = 12
	res, err := Adaptive(sc, 2.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdmittedBefore == 0 {
		t.Fatal("nothing admitted before the surge")
	}
	if res.Drifted == 0 {
		t.Fatal("no drift detected after a 2x surge on placed operators")
	}
	// Replanning may shed queries that genuinely no longer fit, but must
	// never corrupt the state (Adaptive validates internally) and must
	// keep the unaffected queries.
	if res.AdmittedAfter < res.AdmittedBefore-res.Drifted {
		t.Fatalf("replanning lost unaffected queries: before=%d drifted=%d after=%d",
			res.AdmittedBefore, res.Drifted, res.AdmittedAfter)
	}
	if res.Readmitted > res.Drifted {
		t.Fatalf("readmitted %d > drifted %d", res.Readmitted, res.Drifted)
	}
}

func TestAdaptiveNoSurgeNoDrift(t *testing.T) {
	sc := tinyScale()
	sc.Queries = 8
	res, err := Adaptive(sc, 1.0, 3) // surge factor 1 = no change
	if err != nil {
		t.Fatal(err)
	}
	if res.Drifted != 0 {
		t.Fatalf("drift detected without a surge: %d", res.Drifted)
	}
	if res.AdmittedAfter != res.AdmittedBefore {
		t.Fatal("admissions changed without drift")
	}
}
