package sim

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func testChurnScale() ChurnScale {
	cs := DefaultChurnScale()
	cs.Hosts = 8
	cs.BaseStreams = 30
	cs.Queries = 20
	cs.Timeout = 60 * time.Millisecond
	cs.MaxCandHost = 6
	cs.Steps = 6
	cs.MaxDown = 3
	return cs
}

func TestChurnExperimentRuns(t *testing.T) {
	cs := testChurnScale()
	res, err := Churn(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdmittedInitial == 0 {
		t.Fatal("no queries admitted before churn")
	}
	if res.Failures == 0 {
		t.Fatalf("no failures drawn in %d steps (seed %d)", cs.Steps, cs.Seed)
	}
	if res.RepairCalls == 0 {
		t.Fatal("no repair calls despite events")
	}
	// Bookkeeping consistency.
	if res.Kept+res.Dropped != res.Affected {
		t.Fatalf("kept %d + dropped %d != affected %d", res.Kept, res.Dropped, res.Affected)
	}
	if res.Readmitted > res.Resubmitted {
		t.Fatalf("readmitted %d > resubmitted %d", res.Readmitted, res.Resubmitted)
	}
	if res.FinalAdmitted > res.Submitted {
		t.Fatalf("final admitted %d > submitted %d", res.FinalAdmitted, res.Submitted)
	}
}

func TestPoissonMeanRoughlyLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for _, lambda := range []float64{0.3, 1, 3} {
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(rng, lambda)
		}
		mean := float64(sum) / n
		if mean < lambda*0.9 || mean > lambda*1.1 {
			t.Fatalf("poisson(%v) mean %v off by >10%%", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
}
