package sim

import (
	"context"
	"testing"
	"time"
)

// TestOpenLoopSmoke runs the arrival experiment at a tiny scale and checks
// the series is well-formed: both modes present per rate, all submissions
// accounted for, coalescing observed in service mode.
func TestOpenLoopSmoke(t *testing.T) {
	ol := DefaultOpenLoopScale()
	ol.Hosts = 6
	ol.BaseStreams = 24
	ol.Queries = 24
	ol.Timeout = 20 * time.Millisecond
	ol.BatchTimeout = 20 * time.Millisecond
	ol.Rates = []float64{200}
	ol.Submitters = 16

	res := OpenLoop(context.Background(), ol)
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2 (service+serial)", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Mode != "service" && p.Mode != "serial" {
			t.Fatalf("unexpected mode %q", p.Mode)
		}
		if p.Submitted != ol.Queries {
			t.Fatalf("%s: submitted %d, want %d", p.Mode, p.Submitted, ol.Queries)
		}
		if p.Admitted <= 0 {
			t.Fatalf("%s: admitted nothing", p.Mode)
		}
		if p.Throughput <= 0 {
			t.Fatalf("%s: zero throughput", p.Mode)
		}
		if p.P50 < 0 || p.Max < p.P50 {
			t.Fatalf("%s: broken latency percentiles p50=%v max=%v", p.Mode, p.P50, p.Max)
		}
		if p.Mode == "serial" && (p.MeanBatch != 1 || p.MaxBatch != 1) {
			t.Fatalf("serial mode reported batching: %+v", p)
		}
		if p.Mode == "service" && p.MaxBatch < 1 {
			t.Fatalf("service mode reported no batches: %+v", p)
		}
	}
}
