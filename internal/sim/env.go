package sim

import (
	"sqpr/internal/dsps"
	"sqpr/internal/workload"
)

// buildSystem materialises the host substrate of a scale.
func buildSystem(sc Scale) *dsps.System {
	return workload.BuildSystem(workload.SystemConfig{
		NumHosts:   sc.Hosts,
		CPUPerHost: sc.CPUPerHost,
		OutBW:      sc.OutBW,
		InBW:       sc.InBW,
		LinkCap:    sc.LinkCap,
	})
}

// generate materialises the query workload of a scale into sys.
func generate(sys *dsps.System, sc Scale) []dsps.StreamID {
	w := workload.Generate(sys, workload.Config{
		NumBaseStreams: sc.BaseStreams,
		BaseRate:       sc.BaseRate,
		Zipf:           sc.Zipf,
		Arities:        sc.Arities,
		NumQueries:     sc.Queries,
		SelMin:         0.001,
		SelMax:         0.005,
		CostPerRate:    0.05,
		Seed:           sc.Seed,
	})
	return w.Queries
}
