package serve_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/plan"
	"sqpr/internal/serve"
	"sqpr/internal/wal"
	"sqpr/internal/wal/walfault"
)

// fakePlanner is a minimal stateful QueryPlanner + StatePorter: it admits
// any requested stream onto the first usable host. It lets the handler
// tests exercise the HTTP surface without MILP solves; gate/entered make
// in-flight requests observable for the graceful-drain test.
type fakePlanner struct {
	mu       sync.Mutex
	sys      *dsps.System
	state    *dsps.Assignment
	admitted map[dsps.StreamID]bool
	stats    plan.Stats

	// gate, when non-nil, blocks Submit until closed; entered receives one
	// value when a Submit reaches the planner.
	gate    chan struct{}
	entered chan struct{}
}

func newFakePlanner(nHosts, nStreams int) *fakePlanner {
	hosts := make([]dsps.Host, nHosts)
	for i := range hosts {
		hosts[i] = dsps.Host{ID: dsps.HostID(i), CPU: 100, OutBW: 100, InBW: 100}
	}
	sys := dsps.NewSystem(hosts, 100)
	for i := 0; i < nStreams; i++ {
		s := sys.AddStream(1, dsps.NoOperator, "")
		sys.SetRequested(s, true)
		sys.PlaceBase(dsps.HostID(i%nHosts), s)
	}
	return &fakePlanner{
		sys:      sys,
		state:    dsps.NewAssignment(),
		admitted: make(map[dsps.StreamID]bool),
	}
}

func (f *fakePlanner) Submit(ctx context.Context, q dsps.StreamID, opts ...plan.SubmitOption) (plan.Result, error) {
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Submissions++
	cfg := plan.Apply(opts)
	res := plan.Result{Admitted: true}
	for _, s := range cfg.Queries(q) {
		if err := plan.CheckStream(f.sys, s); err != nil {
			return plan.Result{}, err
		}
		if f.admitted[s] {
			res.AlreadyAdmitted = true
			continue
		}
		f.state.Provides[s] = dsps.HostID(0)
		f.admitted[s] = true
	}
	return res, nil
}

func (f *fakePlanner) Remove(q dsps.StreamID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.admitted[q] {
		return plan.ErrNotAdmitted
	}
	delete(f.admitted, q)
	delete(f.state.Provides, q)
	return nil
}

func (f *fakePlanner) Repair(ctx context.Context, events []plan.Event, opts ...plan.SubmitOption) (plan.RepairResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var rr plan.RepairResult
	if err := plan.ApplyEvents(f.sys, events); err != nil {
		return rr, err
	}
	f.state.StripFailed(f.sys)
	for q := range f.admitted {
		if _, ok := f.state.Provides[q]; !ok {
			delete(f.admitted, q)
			rr.Dropped = append(rr.Dropped, q)
		}
	}
	rr.Admitted = true
	return rr, nil
}

func (f *fakePlanner) Assignment() *dsps.Assignment { return f.state }

func (f *fakePlanner) Admitted(q dsps.StreamID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admitted[q]
}

func (f *fakePlanner) AdmittedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.admitted)
}

func (f *fakePlanner) Stats() plan.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *fakePlanner) ExportState() plan.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return plan.ExportedState(f.sys, f.state, f.admitted)
}

func (f *fakePlanner) ImportState(s plan.State) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := plan.CheckState(f.sys, s); err != nil {
		return err
	}
	plan.ApplyHostStates(f.sys, s.Hosts)
	f.state = s.Assignment.Clone()
	f.admitted = s.AdmittedSet()
	return nil
}

// newTestServer builds a service over a fresh fake planner and the HTTP
// server fronting it.
func newTestServer(t *testing.T) (*fakePlanner, *plan.Service, *serve.Server) {
	t.Helper()
	f := newFakePlanner(2, 4)
	svc := plan.NewService(f, plan.ServiceConfig{})
	t.Cleanup(svc.Close)
	srv, err := serve.New(serve.Config{Service: svc, System: f.sys})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	return f, svc, srv
}

// do drives one request through the route table in-process.
func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, into any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
		t.Fatalf("decoding response %q: %v", rec.Body.String(), err)
	}
}

func TestSubmitHandler(t *testing.T) {
	_, _, srv := newTestServer(t)
	h := srv.Handler()

	rec := do(t, h, "POST", "/v1/submit", `{"query": 0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", rec.Code, rec.Body)
	}
	var res struct {
		Query           int  `json:"query"`
		Admitted        bool `json:"admitted"`
		AlreadyAdmitted bool `json:"already_admitted"`
	}
	decode(t, rec, &res)
	if !res.Admitted || res.AlreadyAdmitted || res.Query != 0 {
		t.Fatalf("submit response %+v, want fresh admission of query 0", res)
	}

	// Resubmitting the same query reports idempotent success.
	rec = do(t, h, "POST", "/v1/submit", `{"query": 0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("resubmit: status %d", rec.Code)
	}
	decode(t, rec, &res)
	if !res.Admitted || !res.AlreadyAdmitted {
		t.Fatalf("resubmit response %+v, want already_admitted", res)
	}

	// The admitted listing reflects it.
	rec = do(t, h, "GET", "/v1/admitted", "")
	var adm struct {
		Count   int   `json:"count"`
		Queries []int `json:"queries"`
	}
	decode(t, rec, &adm)
	if adm.Count != 1 || len(adm.Queries) != 1 || adm.Queries[0] != 0 {
		t.Fatalf("admitted listing %+v, want exactly query 0", adm)
	}
}

func TestSubmitRejectsBadBodies(t *testing.T) {
	_, _, srv := newTestServer(t)
	h := srv.Handler()
	for _, body := range []string{`{bad json`, `{"query": 0, "bogus": 1}`} {
		if rec := do(t, h, "POST", "/v1/submit", body); rec.Code != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, rec.Code)
		}
	}
	// An unknown stream is a client mistake, not a server error.
	if rec := do(t, h, "POST", "/v1/submit", `{"query": 999}`); rec.Code != http.StatusBadRequest {
		t.Errorf("submit unknown stream: status %d, want 400", rec.Code)
	}
}

func TestRemoveHandler(t *testing.T) {
	_, _, srv := newTestServer(t)
	h := srv.Handler()
	if rec := do(t, h, "POST", "/v1/remove", `{"query": 0}`); rec.Code != http.StatusNotFound {
		t.Fatalf("remove unadmitted: status %d, want 404", rec.Code)
	}
	do(t, h, "POST", "/v1/submit", `{"query": 0}`)
	if rec := do(t, h, "POST", "/v1/remove", `{"query": 0}`); rec.Code != http.StatusOK {
		t.Fatalf("remove admitted: status %d, body %s", rec.Code, rec.Body)
	}
}

func TestRepairHandler(t *testing.T) {
	_, _, srv := newTestServer(t)
	h := srv.Handler()

	if rec := do(t, h, "POST", "/v1/repair", `{"events": []}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty repair: status %d, want 400", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/repair", `{"events": [{"kind": "explode", "host": 0}]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown event kind: status %d, want 400", rec.Code)
	}

	do(t, h, "POST", "/v1/submit", `{"query": 0}`)
	rec := do(t, h, "POST", "/v1/repair", `{"events": [{"kind": "drain", "host": 0}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("drain repair: status %d, body %s", rec.Code, rec.Body)
	}
	var rr struct {
		Admitted bool  `json:"admitted"`
		Dropped  []int `json:"dropped"`
	}
	decode(t, rec, &rr)
	if !rr.Admitted || len(rr.Dropped) != 0 {
		t.Fatalf("drain repair %+v, want admitted with nothing dropped", rr)
	}
}

func TestQueriesAndAssignmentHandlers(t *testing.T) {
	_, _, srv := newTestServer(t)
	h := srv.Handler()

	rec := do(t, h, "GET", "/v1/queries", "")
	var qs struct {
		Queries []int `json:"queries"`
	}
	decode(t, rec, &qs)
	if len(qs.Queries) != 4 {
		t.Fatalf("queries listing %+v, want the 4 requested streams", qs)
	}
	if rec := do(t, h, "GET", "/v1/assignment", ""); rec.Code != http.StatusOK {
		t.Fatalf("assignment: status %d", rec.Code)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	_, _, srv := newTestServer(t)
	h := srv.Handler()
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("readyz: status %d", rec.Code)
	}
	srv.StartDrain()
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", rec.Code)
	}
	// Draining gates readiness only: liveness and the API keep serving so
	// in-flight work can finish.
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: status %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/submit", `{"query": 1}`); rec.Code != http.StatusOK {
		t.Fatalf("submit while draining: status %d", rec.Code)
	}
}

// TestWedgedServiceAnswers503 pins the WAL-wedge contract on the wire: a
// journal failure turns every state-changing route into a 503, flips
// /readyz to 503 and raises sqpr_wal_wedged — while reads keep serving.
func TestWedgedServiceAnswers503(t *testing.T) {
	fs := walfault.New()
	f := newFakePlanner(2, 4)
	svc, _, err := plan.OpenService(f, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	defer svc.Close()
	srv, err := serve.New(serve.Config{Service: svc})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	h := srv.Handler()

	if rec := do(t, h, "POST", "/v1/submit", `{"query": 0}`); rec.Code != http.StatusOK {
		t.Fatalf("healthy submit: status %d, body %s", rec.Code, rec.Body)
	}

	// The next journal append dies mid-write; the service wedges.
	fs.CrashAt(wal.CrashAppendMidFrame, 1)
	if rec := do(t, h, "POST", "/v1/submit", `{"query": 1}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit across journal failure: status %d, want 503", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/remove", `{"query": 0}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("remove on wedged service: status %d, want 503", rec.Code)
	}
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on wedged service: status %d, want 503", rec.Code)
	}
	// Reads and telemetry still serve; the wedge is visible in /metrics.
	if rec := do(t, h, "GET", "/v1/admitted", ""); rec.Code != http.StatusOK {
		t.Fatalf("admitted on wedged service: status %d", rec.Code)
	}
	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics on wedged service: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "sqpr_wal_wedged 1") {
		t.Fatal("metrics do not report sqpr_wal_wedged 1 on a wedged service")
	}
}

// TestGracefulDrainCompletesInFlight drives the full shutdown sequence over
// a real listener: an in-flight submit is parked inside the planner, the
// drain starts, http.Server.Shutdown waits it out, the reply arrives intact,
// and the exit path leaves a journal the next boot can recover the admission
// from.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	fs := walfault.New()
	f := newFakePlanner(2, 4)
	f.gate = make(chan struct{})
	f.entered = make(chan struct{}, 1)
	svc, _, err := plan.OpenService(f, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("OpenService: %v", err)
	}
	srv, err := serve.New(serve.Config{Service: svc})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	type outcome struct {
		status int
		err    error
	}
	inflight := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(base+"/v1/submit", "application/json", strings.NewReader(`{"query": 0}`))
		if err != nil {
			inflight <- outcome{err: err}
			return
		}
		resp.Body.Close()
		inflight <- outcome{status: resp.StatusCode}
	}()

	// The submit is now parked inside the planner: start the drain.
	<-f.entered
	srv.StartDrain()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", resp.StatusCode)
	}

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- hs.Shutdown(ctx)
	}()
	// Release the parked planner call; the in-flight request must complete
	// even though shutdown is underway.
	close(f.gate)
	got := <-inflight
	if got.err != nil || got.status != http.StatusOK {
		t.Fatalf("in-flight submit during drain: %+v, want 200", got)
	}
	if err := <-shutdown; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Exit path: flush and close the journal, then prove the admission is
	// durable by recovering a fresh planner from it.
	if err := svc.SyncWAL(); err != nil {
		t.Fatalf("SyncWAL on exit: %v", err)
	}
	svc.Close()
	f2 := newFakePlanner(2, 4)
	svc2, rs, err := plan.OpenService(f2, plan.ServiceConfig{}, fs, wal.Options{})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer svc2.Close()
	if rs.Admitted != 1 || !f2.Admitted(dsps.StreamID(0)) {
		t.Fatalf("recovered %d admitted (%+v), want the drained-through submit", rs.Admitted, rs)
	}
}

func TestNewRequiresService(t *testing.T) {
	if _, err := serve.New(serve.Config{}); err == nil {
		t.Fatal("serve.New accepted a nil Service")
	}
}

// TestStatusMapping pins the error → HTTP status contract for closed
// services (the drain exit path races clients).
func TestStatusMapping(t *testing.T) {
	f := newFakePlanner(2, 4)
	svc := plan.NewService(f, plan.ServiceConfig{})
	srv, err := serve.New(serve.Config{Service: svc})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	svc.Close()
	rec := do(t, srv.Handler(), "POST", "/v1/submit", `{"query": 0}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit on closed service: status %d, want 503", rec.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	decode(t, rec, &body)
	if !strings.Contains(body.Error, plan.ErrServiceClosed.Error()) {
		t.Fatalf("closed-service error body %q does not carry %q", body.Error, plan.ErrServiceClosed)
	}
}
