package serve

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"sqpr/internal/engine"
	"sqpr/internal/plan"
	"sqpr/internal/wal"
)

// MetricsData is one consistent snapshot of every telemetry surface the
// exporter unifies. The handler gathers it from the live service; tests
// construct it directly, which is what keeps the exposition format
// golden-testable.
type MetricsData struct {
	// Planner is the wrapped planner's cumulative Stats (which embeds the
	// LP engine's FactorStats).
	Planner plan.Stats
	// Service is the admission-service telemetry: queueing, coalescing and
	// the request-latency histogram.
	Service plan.ServiceStats
	// WAL is the admission journal's telemetry (zero for a non-durable
	// service).
	WAL wal.Stats
	// Wedged reports the service's sticky journal-failure state.
	Wedged bool
	// Admitted is the current admitted query count.
	Admitted int
	// Engine carries the resource monitor's counters; nil when the server
	// has no engine attached.
	Engine *EngineMetrics
}

// EngineMetrics is the engine.Monitor surface in exportable form.
type EngineMetrics struct {
	Snapshot                engine.Snapshot
	LatencyMean, LatencyMax time.Duration
	Failures, Recoveries    int64
	ReconnectAttempts       int64
	ReconnectFailures       int64
}

// WriteMetrics renders the snapshot in Prometheus text exposition format
// (version 0.0.4). Metric names follow sqpr_<surface>_<metric>; per-host
// series carry a host="<id>" label; cumulative quantities end in _total.
// The output is deterministic for a fixed MetricsData.
func WriteMetrics(w io.Writer, d MetricsData) {
	m := metricsWriter{w: w}

	// Planner surface (plan.Stats).
	m.counter("sqpr_planner_submissions_total", "Planning calls applied by the planner (a batch counts once).", float64(d.Planner.Submissions))
	m.counter("sqpr_planner_rejections_total", "Planning calls that failed to admit a fresh query.", float64(d.Planner.Rejections))
	m.counter("sqpr_planner_plan_seconds_total", "Wall-clock planning time accumulated across calls.", d.Planner.TotalPlanTime.Seconds())
	m.counter("sqpr_planner_nodes_total", "Branch-and-bound nodes explored.", float64(d.Planner.TotalNodes))
	m.counter("sqpr_planner_lp_iterations_total", "Simplex iterations performed.", float64(d.Planner.TotalLPIters))
	m.counter("sqpr_planner_cuts_total", "Root cutting planes pooled.", float64(d.Planner.TotalCuts))
	m.counter("sqpr_planner_fixings_total", "Reduced-cost bound fixings applied.", float64(d.Planner.TotalFixings))
	m.counter("sqpr_planner_presolve_fixed_total", "Variables eliminated by presolve.", float64(d.Planner.TotalPresolveFixed))
	m.counter("sqpr_planner_timeouts_total", "Solves that hit their deadline or node budget.", float64(d.Planner.Timeouts))
	m.counter("sqpr_planner_stalls_total", "Solves ended by the stagnation stop.", float64(d.Planner.Stalls))
	m.gauge("sqpr_planner_admitted_queries", "Currently admitted queries.", float64(d.Admitted))

	// LP factorization surface (lp.FactorStats via plan.Stats.Factor).
	f := d.Planner.Factor
	m.counter("sqpr_lp_refactors_total", "Basis factorizations performed.", float64(f.Refactors))
	m.counter("sqpr_lp_drift_rebuilds_total", "Refactorizations forced by numerical drift.", float64(f.DriftRebuilds))
	m.counter("sqpr_lp_eta_appends_total", "Product-form updates appended between refactorizations.", float64(f.EtaAppends))
	m.gauge("sqpr_lp_peak_etas", "Longest eta file reached.", float64(f.PeakEtas))
	m.gauge("sqpr_lp_fill_ratio", "nnz(L+U)/nnz(B) at the last refactorization (high-water).", f.FillRatio)

	// Admission-service surface (plan.ServiceStats).
	s := d.Service
	m.counter("sqpr_service_requests_total", "Requests the dispatcher applied (excludes expired and shed requests).", float64(s.Requests))
	m.counter("sqpr_service_replies_total", "Replies delivered to callers (applied + expired).", float64(s.Replies))
	m.counter("sqpr_service_queue_full_total", "Requests shed with queue-full backpressure.", float64(s.QueueFull))
	m.counter("sqpr_service_expired_total", "Requests whose context expired while queued.", float64(s.Expired))
	m.counter("sqpr_service_solves_total", "Joint planning calls issued by the dispatcher.", float64(s.Solves))
	m.counter("sqpr_service_batched_submits_total", "Submits carried by joint solves.", float64(s.BatchedSubmits))
	m.gauge("sqpr_service_max_batch", "Largest coalesced batch observed.", float64(s.MaxBatch))
	m.gauge("sqpr_service_max_request_seconds", "Largest request latency observed.", s.MaxLatency.Seconds())
	m.histogram("sqpr_service_request_seconds", "Per-request latency from queue arrival to reply.",
		s.LatencyHist[:], s.TotalLatency.Seconds())

	// Journal surface (wal.Stats).
	m.counter("sqpr_wal_appends_total", "Journal records appended.", float64(d.WAL.Appends))
	m.counter("sqpr_wal_syncs_total", "Journal fsyncs issued.", float64(d.WAL.Syncs))
	m.counter("sqpr_wal_rotations_total", "Journal segment rotations.", float64(d.WAL.Rotations))
	m.counter("sqpr_wal_snapshots_total", "Journal compaction snapshots written.", float64(d.WAL.Snapshots))
	m.counter("sqpr_wal_compacted_segments_total", "Segment files deleted by snapshots.", float64(d.WAL.CompactedSegments))
	m.gauge("sqpr_wal_active_segment_bytes", "Byte size of the segment being appended.", float64(d.WAL.ActiveSegmentBytes))
	m.gauge("sqpr_wal_last_seq", "Sequence number of the last journaled record.", float64(d.WAL.LastSeq))
	m.gauge("sqpr_wal_snapshot_seq", "Sequence number covered by the latest snapshot.", float64(d.WAL.SnapshotSeq))
	m.gauge("sqpr_wal_wedged", "1 when the service is wedged on a journal failure, else 0.", boolGauge(d.Wedged))

	// Engine monitor surface (engine.Monitor), when attached.
	if e := d.Engine; e != nil {
		m.perHost("sqpr_engine_cpu_work_total", "Accumulated operator cost units per host.", e.Snapshot.CPUWork)
		m.perHost("sqpr_engine_sent_total", "Rate-weighted network egress per host (transfers out, relays included).", e.Snapshot.Sent)
		m.perHost("sqpr_engine_received_total", "Rate-weighted network ingress per host.", e.Snapshot.Received)
		m.perHost("sqpr_engine_delivered_total", "Rate-weighted client deliveries per host (local, not egress).", e.Snapshot.Delivered)
		m.help("sqpr_engine_drops_total", "Tuples lost to full queues or down hosts, per host.", "counter")
		for h, v := range e.Snapshot.Drops {
			m.labeled("sqpr_engine_drops_total", h, float64(v))
		}
		m.counter("sqpr_engine_compute_samples_total", "Operator invocations folded into cpu_work.", float64(e.Snapshot.ComputeSamples))
		m.gauge("sqpr_engine_latency_mean_seconds", "Mean source-to-delivery latency.", e.LatencyMean.Seconds())
		m.gauge("sqpr_engine_latency_max_seconds", "Maximum source-to-delivery latency.", e.LatencyMax.Seconds())
		m.counter("sqpr_engine_host_failures_total", "Host failures observed by the monitor.", float64(e.Failures))
		m.counter("sqpr_engine_host_recoveries_total", "Host recoveries observed by the monitor.", float64(e.Recoveries))
		m.counter("sqpr_engine_reconnect_attempts_total", "Transport redials of previously failed peer connections.", float64(e.ReconnectAttempts))
		m.counter("sqpr_engine_reconnect_failures_total", "Transport redials that failed again.", float64(e.ReconnectFailures))
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// metricsWriter accumulates the exposition text.
type metricsWriter struct {
	w io.Writer
}

func (m *metricsWriter) help(name, help, typ string) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *metricsWriter) counter(name, help string, v float64) {
	m.help(name, help, "counter")
	fmt.Fprintf(m.w, "%s %s\n", name, num(v))
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	m.help(name, help, "gauge")
	fmt.Fprintf(m.w, "%s %s\n", name, num(v))
}

func (m *metricsWriter) labeled(name string, host int, v float64) {
	fmt.Fprintf(m.w, "%s{host=\"%d\"} %s\n", name, host, num(v))
}

func (m *metricsWriter) perHost(name, help string, vs []float64) {
	m.help(name, help, "counter")
	for h, v := range vs {
		m.labeled(name, h, v)
	}
}

// histogram renders a Prometheus histogram from the service's fixed-bucket
// latency counts (plan.LatencyBuckets bounds + overflow): cumulative
// _bucket series, then _sum and _count.
func (m *metricsWriter) histogram(name, help string, buckets []int, sumSeconds float64) {
	m.help(name, help, "histogram")
	cum := 0
	for i, b := range plan.LatencyBuckets {
		cum += buckets[i]
		fmt.Fprintf(m.w, "%s_bucket{le=\"%s\"} %d\n", name, num(b.Seconds()), cum)
	}
	cum += buckets[len(plan.LatencyBuckets)]
	fmt.Fprintf(m.w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(m.w, "%s_sum %s\n", name, num(sumSeconds))
	fmt.Fprintf(m.w, "%s_count %d\n", name, cum)
}

// num formats a sample value the shortest way that round-trips.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
