package serve

import (
	"context"
	"fmt"
	"go/ast"
	"net/http"
	"strings"
	"testing"

	"sqpr/internal/analysis/anz"
	"sqpr/internal/plan"
	"sqpr/internal/wal"
)

// TestStatusForIsExhaustive statically checks that every exported Err*
// sentinel of the plan and wal packages is handled in statusFor: a new
// sentinel added to either package without an HTTP mapping would
// otherwise surface to clients as a generic 500 and to this test as a
// missing name. The check reads the type-checked AST rather than a
// hand-maintained list, so it cannot go stale.
func TestStatusForIsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks three packages")
	}
	pkgs, err := anz.Load("../..", "sqpr/internal/plan", "sqpr/internal/wal", "sqpr/internal/serve")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	byPath := make(map[string]*anz.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}

	// Every exported package-level `var Err... error` in plan and wal.
	want := make(map[string]bool)
	for _, path := range []string{"sqpr/internal/plan", "sqpr/internal/wal"} {
		p := byPath[path]
		if p == nil {
			t.Fatalf("package %s not loaded", path)
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			if !strings.HasPrefix(name, "Err") || !ast.IsExported(name) {
				continue
			}
			obj := scope.Lookup(name)
			if obj.Type().String() != "error" {
				continue
			}
			want[p.Types.Name()+"."+name] = true
		}
	}
	if len(want) < 5 {
		t.Fatalf("found only %d sentinels (%v); enumeration is broken", len(want), keys(want))
	}

	// Every pkg.ErrX mentioned inside statusFor.
	handled := make(map[string]bool)
	srv := byPath["sqpr/internal/serve"]
	for _, file := range srv.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "statusFor" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && strings.HasPrefix(sel.Sel.Name, "Err") {
					handled[id.Name+"."+sel.Sel.Name] = true
				}
				return true
			})
		}
	}
	if len(handled) == 0 {
		t.Fatal("statusFor not found in serve package")
	}

	for name := range want {
		if !handled[name] {
			t.Errorf("sentinel %s has no case in statusFor: clients would see a generic 500", name)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestStatusForMappings spot-checks the runtime behaviour, wrapped the way
// handlers actually surface errors.
func TestStatusForMappings(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{fmt.Errorf("submit: %w", plan.ErrQueueFull), http.StatusTooManyRequests},
		{fmt.Errorf("journal: %w", plan.ErrWALFailed), http.StatusServiceUnavailable},
		{fmt.Errorf("replay: %w", wal.ErrCorrupt), http.StatusServiceUnavailable},
		{fmt.Errorf("append: %w", wal.ErrClosed), http.StatusServiceUnavailable},
		{fmt.Errorf("lookup: %w", plan.ErrUnknownStream), http.StatusBadRequest},
		{fmt.Errorf("remove: %w", plan.ErrNotAdmitted), http.StatusNotFound},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{fmt.Errorf("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.code {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.code)
		}
	}
}
