// Package serve is the control-plane serving surface of the admission
// service: an HTTP API over plan.Service (submit, remove, repair, admitted
// set, assignment) plus a Prometheus-text-format metrics exporter that
// unifies every telemetry surface of the system — planner Stats, service
// queueing/latency stats, the write-ahead journal, the engine's per-host
// resource monitor and the LP factorization counters. It turns the one-shot
// planning binaries into a long-running admission daemon in the style of
// operator control planes: liveness on /healthz, readiness on /readyz (a
// WAL-wedged service serves reads but is not ready for work), and a
// StartDrain hook that flips readiness off ahead of a graceful shutdown.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"sqpr/internal/dsps"
	"sqpr/internal/engine"
	"sqpr/internal/plan"
	"sqpr/internal/wal"
)

// Config wires a Server to its telemetry and state sources.
type Config struct {
	// Service is the admission service the API fronts. Required.
	Service *plan.Service
	// System, when non-nil, enables GET /v1/queries (the submittable query
	// streams of the system).
	System *dsps.System
	// Monitor, when non-nil, contributes the engine's per-host utilisation
	// counters to GET /metrics.
	Monitor *engine.Monitor
}

// Server is the HTTP control plane over one admission service. Create it
// with New, mount Handler on an http.Server, and call StartDrain before a
// graceful shutdown so load balancers stop routing new work here while
// in-flight requests finish.
type Server struct {
	svc *plan.Service
	sys *dsps.System
	mon *engine.Monitor

	draining atomic.Bool
	mux      *http.ServeMux
}

// New builds the server and its route table.
func New(cfg Config) (*Server, error) {
	if cfg.Service == nil {
		return nil, errors.New("serve: Config.Service is required")
	}
	s := &Server{svc: cfg.Service, sys: cfg.System, mon: cfg.Monitor}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/remove", s.handleRemove)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("GET /v1/admitted", s.handleAdmitted)
	mux.HandleFunc("GET /v1/assignment", s.handleAssignment)
	mux.HandleFunc("GET /v1/queries", s.handleQueries)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux = mux
	return s, nil
}

// Handler returns the route table for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain flips the server into draining mode: /readyz reports 503 so
// traffic stops being routed here, while every other endpoint keeps
// serving. Call it when the shutdown signal arrives, before
// http.Server.Shutdown waits out the in-flight requests.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// submitRequest is the POST /v1/submit body.
type submitRequest struct {
	// Query is the requested result stream.
	Query dsps.StreamID `json:"query"`
	// TimeoutMS, when positive, bounds the planning call (WithTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// submitResponse reports a planning outcome over the wire.
type submitResponse struct {
	Query           dsps.StreamID `json:"query"`
	Admitted        bool          `json:"admitted"`
	AlreadyAdmitted bool          `json:"already_admitted,omitempty"`
	Reason          string        `json:"reason,omitempty"`
	PlanMS          float64       `json:"plan_ms"`
	Nodes           int           `json:"nodes,omitempty"`
	LPIters         int           `json:"lp_iters,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var opts []plan.SubmitOption
	if req.TimeoutMS > 0 {
		opts = append(opts, plan.WithTimeout(time.Duration(req.TimeoutMS)*time.Millisecond))
	}
	res, err := s.svc.Submit(r.Context(), req.Query, opts...)
	if err != nil {
		writeError(w, err)
		return
	}
	reason := ""
	if res.Reason != plan.ReasonNone {
		reason = res.Reason.String()
	}
	writeJSON(w, http.StatusOK, submitResponse{
		Query:           req.Query,
		Admitted:        res.Admitted,
		AlreadyAdmitted: res.AlreadyAdmitted,
		Reason:          reason,
		PlanMS:          float64(res.PlanTime) / float64(time.Millisecond),
		Nodes:           res.Nodes,
		LPIters:         res.LPIters,
	})
}

// removeRequest is the POST /v1/remove body.
type removeRequest struct {
	Query dsps.StreamID `json:"query"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req removeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.svc.Remove(req.Query); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": req.Query, "removed": true})
}

// eventJSON is one churn event on the wire. Kind accepts the canonical
// EventKind names ("host-failed", ...) and short curl-friendly aliases
// ("fail", "recover", "drain", "drift").
type eventJSON struct {
	Kind  string        `json:"kind"`
	Host  dsps.HostID   `json:"host,omitempty"`
	Query dsps.StreamID `json:"query,omitempty"`
}

// repairRequest is the POST /v1/repair body.
type repairRequest struct {
	Events []eventJSON `json:"events"`
}

// repairResponse reports a repair outcome over the wire.
type repairResponse struct {
	Admitted bool            `json:"admitted"`
	Affected []dsps.StreamID `json:"affected,omitempty"`
	Kept     []dsps.StreamID `json:"kept,omitempty"`
	Dropped  []dsps.StreamID `json:"dropped,omitempty"`
	Migrated int             `json:"migrated"`
	PlanMS   float64         `json:"plan_ms"`
}

// parseEvent maps one wire event to a plan.Event.
func parseEvent(e eventJSON) (plan.Event, error) {
	switch e.Kind {
	case "fail", plan.HostFailed.String():
		return plan.FailHost(e.Host), nil
	case "recover", plan.HostRecovered.String():
		return plan.RecoverHost(e.Host), nil
	case "drain", plan.HostDrained.String():
		return plan.DrainHost(e.Host), nil
	case "drift", plan.QueryDrifted.String():
		return plan.DriftQuery(e.Query), nil
	}
	return plan.Event{}, fmt.Errorf("unknown event kind %q (want fail, recover, drain or drift)", e.Kind)
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req repairRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Events) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody("repair needs at least one event"))
		return
	}
	events := make([]plan.Event, 0, len(req.Events))
	for _, e := range req.Events {
		ev, err := parseEvent(e)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
			return
		}
		events = append(events, ev)
	}
	rr, err := s.svc.Repair(r.Context(), events)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, repairResponse{
		Admitted: rr.Admitted,
		Affected: rr.Affected,
		Kept:     rr.Kept,
		Dropped:  rr.Dropped,
		Migrated: rr.Migrated,
		PlanMS:   float64(rr.PlanTime) / float64(time.Millisecond),
	})
}

func (s *Server) handleAdmitted(w http.ResponseWriter, r *http.Request) {
	qs := s.svc.AdmittedQueries()
	if qs == nil {
		qs = []dsps.StreamID{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   s.svc.AdmittedCount(),
		"queries": qs,
	})
}

func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Assignment())
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if s.sys == nil {
		writeJSON(w, http.StatusNotFound, errorBody("no system attached to this server"))
		return
	}
	qs := []dsps.StreamID{}
	for id := range s.sys.Streams {
		if s.sys.Streams[id].Requested {
			qs = append(qs, dsps.StreamID(id))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": qs})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.svc.Wedged(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: admission journal wedged: %v\n", err)
		return
	}
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data := MetricsData{
		Planner:  s.svc.Stats(),
		Service:  s.svc.ServiceStats(),
		WAL:      s.svc.WALStats(),
		Wedged:   s.svc.Wedged() != nil,
		Admitted: s.svc.AdmittedCount(),
	}
	if s.mon != nil {
		em := EngineMetrics{Snapshot: s.mon.Snapshot()}
		em.LatencyMean, em.LatencyMax = s.mon.Latency()
		em.Failures, em.Recoveries = s.mon.HostEvents()
		em.ReconnectAttempts, em.ReconnectFailures = s.mon.Reconnects()
		data.Engine = &em
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	WriteMetrics(w, data)
}

// decodeBody parses a JSON request body, answering 400 on malformed input.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody("decoding request body: "+err.Error()))
		return false
	}
	return true
}

// statusFor maps the service's typed errors to HTTP status codes: client
// mistakes are 4xx, backpressure is 429, a wedged or closed service is 503
// (the same condition /readyz reports), everything else 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, plan.ErrWALFailed), errors.Is(err, plan.ErrServiceClosed),
		errors.Is(err, wal.ErrCorrupt), errors.Is(err, wal.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, plan.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, plan.ErrUnknownStream), errors.Is(err, plan.ErrNotRequested):
		return http.StatusBadRequest
	case errors.Is(err, plan.ErrNotAdmitted):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func errorBody(msg string) map[string]string { return map[string]string{"error": msg} }

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorBody(err.Error()))
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
