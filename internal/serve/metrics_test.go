package serve_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqpr/internal/engine"
	"sqpr/internal/lp"
	"sqpr/internal/plan"
	"sqpr/internal/serve"
	"sqpr/internal/wal"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenData populates every field of every surface with distinct values so
// a mixed-up mapping (wrong field feeding a metric) cannot cancel out.
func goldenData() serve.MetricsData {
	var hist [len(plan.LatencyBuckets) + 1]int
	hist[0] = 5
	hist[2] = 3
	hist[len(hist)-1] = 1
	return serve.MetricsData{
		Planner: plan.Stats{
			Submissions:        41,
			Rejections:         3,
			TotalPlanTime:      1500 * time.Millisecond,
			TotalNodes:         210,
			TotalLPIters:       3200,
			TotalCuts:          17,
			TotalFixings:       9,
			TotalPresolveFixed: 54,
			Timeouts:           2,
			Stalls:             1,
			Factor: lp.FactorStats{
				Refactors:     12,
				DriftRebuilds: 1,
				EtaAppends:    300,
				PeakEtas:      40,
				FillRatio:     1.75,
			},
		},
		Service: plan.ServiceStats{
			Requests:       38,
			Replies:        40,
			QueueFull:      4,
			Expired:        2,
			Solves:         20,
			BatchedSubmits: 35,
			MaxBatch:       6,
			TotalLatency:   900 * time.Millisecond,
			MaxLatency:     250 * time.Millisecond,
			LatencyHist:    hist,
		},
		WAL: wal.Stats{
			Appends:            36,
			Syncs:              36,
			Rotations:          2,
			Snapshots:          1,
			CompactedSegments:  1,
			ActiveSegmentBytes: 4096,
			LastSeq:            36,
			SnapshotSeq:        30,
		},
		Wedged:   true,
		Admitted: 33,
		Engine: &serve.EngineMetrics{
			Snapshot: engine.Snapshot{
				CPUWork:        []float64{10.5, 20.25},
				Sent:           []float64{100, 0},
				Received:       []float64{0, 100},
				Delivered:      []float64{0, 42},
				Drops:          []int64{0, 7},
				ComputeSamples: 123,
			},
			LatencyMean:       3 * time.Millisecond,
			LatencyMax:        90 * time.Millisecond,
			Failures:          2,
			Recoveries:        1,
			ReconnectAttempts: 5,
			ReconnectFailures: 2,
		},
	}
}

// TestWriteMetricsGolden pins the whole exposition — metric names, labels,
// HELP/TYPE lines, histogram cumulation and value formatting — against a
// checked-in golden file. Run with -update to regenerate after a deliberate
// format change.
func TestWriteMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	serve.WriteMetrics(&buf, goldenData())

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file; run with -update if deliberate.\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWriteMetricsHistogramCumulates checks the Prometheus histogram
// contract independent of the golden file: buckets are cumulative, +Inf
// equals _count, and _count equals the reply total.
func TestWriteMetricsHistogramCumulates(t *testing.T) {
	var buf bytes.Buffer
	serve.WriteMetrics(&buf, goldenData())
	out := buf.String()

	if !strings.Contains(out, `sqpr_service_request_seconds_bucket{le="+Inf"} 9`) {
		t.Fatalf("+Inf bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, "sqpr_service_request_seconds_count 9") {
		t.Fatalf("_count wrong:\n%s", out)
	}
	// The first two bounds share the cumulative count of bucket 0 (bucket 1
	// is empty), then bucket 2 adds 3.
	if !strings.Contains(out, `sqpr_service_request_seconds_bucket{le="0.0001"} 5`) ||
		!strings.Contains(out, `sqpr_service_request_seconds_bucket{le="0.0005"} 5`) ||
		!strings.Contains(out, `sqpr_service_request_seconds_bucket{le="0.001"} 8`) {
		t.Fatalf("cumulative buckets wrong:\n%s", out)
	}
}

// TestWriteMetricsOmitsEngineWhenAbsent checks the no-monitor daemon shape:
// every non-engine surface is present, engine series are absent.
func TestWriteMetricsOmitsEngineWhenAbsent(t *testing.T) {
	d := goldenData()
	d.Engine = nil
	var buf bytes.Buffer
	serve.WriteMetrics(&buf, d)
	out := buf.String()
	if strings.Contains(out, "sqpr_engine_") {
		t.Fatalf("engine series emitted without a monitor:\n%s", out)
	}
	for _, want := range []string{"sqpr_planner_submissions_total 41", "sqpr_lp_refactors_total 12",
		"sqpr_service_requests_total 38", "sqpr_wal_appends_total 36", "sqpr_wal_wedged 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
