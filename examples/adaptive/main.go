// Adaptive: demonstrates §IV-B adaptive query planning. After initial
// placement, the observed cost of an operator drifts far above the cost
// model's estimate (e.g. a data-rate surge). The planner detects the
// drifted queries, conceptually removes them, and re-plans them with the
// corrected costs — migrating operators to hosts that can still carry them.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sqpr"
)

func main() {
	sys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts:   5,
		CPUPerHost: 8,
		OutBW:      80,
		InBW:       80,
		LinkCap:    40,
	})
	wcfg := sqpr.DefaultWorkloadConfig()
	wcfg.NumBaseStreams = 24
	wcfg.NumQueries = 10
	wcfg.Arities = []int{2, 3}
	wcfg.Seed = 5
	w := sqpr.GenerateWorkload(sys, wcfg)

	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 300 * time.Millisecond
	planner := sqpr.NewPlanner(sys, cfg)

	ctx := context.Background()
	for _, q := range w.Queries {
		if _, err := planner.Submit(ctx, q); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("initially admitted %d/%d queries\n", planner.AdmittedCount(), len(w.Queries))

	before := planner.Assignment().ComputeUsage(sys)
	fmt.Printf("max per-host CPU before drift: %.2f\n", before.MaxCPU())

	// Simulate monitoring feedback: one heavily shared operator now costs
	// 2.5x its estimate (the resource monitor of Fig. 3 reports this).
	var drifted sqpr.OperatorID = -1
	for pl, on := range planner.Assignment().Ops {
		if on {
			drifted = pl.Op
			break
		}
	}
	if drifted < 0 {
		log.Fatal("no operators placed")
	}
	observed := map[sqpr.OperatorID]float64{
		drifted: sys.Operators[drifted].Cost * 2.5,
	}
	affected := planner.DriftedQueries(observed, 0.2)
	fmt.Printf("operator %d drifted 2.5x; %d queries affected\n", drifted, len(affected))

	// Update the cost model to the observed value and re-plan the affected
	// queries (remove + re-add, as §IV-B prescribes).
	sys.Operators[drifted].Cost = observed[drifted]
	results, err := planner.Replan(ctx, affected)
	if err != nil {
		log.Fatal(err)
	}
	readmitted := 0
	for _, r := range results {
		if r.Admitted {
			readmitted++
		}
	}
	fmt.Printf("re-planned %d queries, %d re-admitted\n", len(affected), readmitted)
	fmt.Printf("now admitted %d/%d queries\n", planner.AdmittedCount(), len(w.Queries))

	after := planner.Assignment().ComputeUsage(sys)
	fmt.Printf("max per-host CPU after replanning: %.2f\n", after.MaxCPU())
	if err := planner.Assignment().Validate(sys); err != nil {
		log.Fatalf("replanned state invalid: %v", err)
	}
	fmt.Println("replanned state validated OK")
}
