// Quickstart: build a tiny DSPS, register two overlapping join queries, and
// let SQPR plan them — demonstrating admission, placement and sub-query
// reuse in ~60 lines of API usage.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sqpr"
)

func main() {
	// Three hosts with CPU, host-bandwidth and link-capacity budgets.
	sys := sqpr.NewSystem([]sqpr.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 2, CPU: 10, OutBW: 100, InBW: 100},
	}, 50)

	// Base streams: trades and quotes arrive at host 0, news at host 2.
	trades := sys.AddStream(8, sqpr.NoOperator, "trades")
	quotes := sys.AddStream(8, sqpr.NoOperator, "quotes")
	news := sys.AddStream(4, sqpr.NoOperator, "news")
	sys.PlaceBase(0, trades)
	sys.PlaceBase(0, quotes)
	sys.PlaceBase(2, news)

	// Operators: a trades⋈quotes join shared by both queries, plus a
	// second join with the news stream.
	tq := sys.AddOperator([]sqpr.StreamID{trades, quotes}, 2, 3, "trades⋈quotes")
	tqn := sys.AddOperator([]sqpr.StreamID{tq.Output, news}, 1, 2, "tq⋈news")

	// Query 1 asks for the trades⋈quotes stream; query 2 for the 3-way.
	sys.SetRequested(tq.Output, true)
	sys.SetRequested(tqn.Output, true)

	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 500 * time.Millisecond
	planner := sqpr.NewPlanner(sys, cfg)

	for _, q := range []sqpr.StreamID{tq.Output, tqn.Output} {
		res, err := planner.Submit(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d (%s): admitted=%v in %v\n",
			q, sys.Streams[q].Name, res.Admitted, res.PlanTime.Round(time.Millisecond))
	}

	a := planner.Assignment()
	fmt.Println("\nplacements:")
	for _, pl := range a.SortedOps() {
		fmt.Printf("  %s on host %d\n", sys.Operators[pl.Op].Name, pl.Host)
	}
	fmt.Println("flows:")
	for _, f := range a.SortedFlows() {
		fmt.Printf("  %s: host %d -> host %d\n", sys.Streams[f.Stream].Name, f.From, f.To)
	}

	// The shared join runs once: both queries reuse its output stream.
	count := 0
	for pl, on := range a.Ops {
		if on && pl.Op == tq.ID {
			count++
		}
	}
	fmt.Printf("\nshared operator instances: %d (reuse means exactly 1)\n", count)
	if err := a.Validate(sys); err != nil {
		log.Fatalf("plan invalid: %v", err)
	}
	fmt.Println("plan validated OK")
}
