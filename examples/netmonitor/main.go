// Netmonitor: a network-monitoring deployment (one of the application
// domains motivating the paper, cf. Gigascope). Probe streams from several
// vantage points are joined into per-link and per-path monitors; SQPR plans
// the queries and the mini stream engine then executes the plan, with the
// resource monitor reporting real consumption — the full plan → deploy →
// measure loop of the DISSP architecture (Fig. 3).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sqpr"
)

func main() {
	// Four monitoring hosts; probes land on different hosts.
	sys := sqpr.NewSystem([]sqpr.Host{
		{ID: 0, CPU: 12, OutBW: 120, InBW: 120},
		{ID: 1, CPU: 12, OutBW: 120, InBW: 120},
		{ID: 2, CPU: 12, OutBW: 120, InBW: 120},
		{ID: 3, CPU: 12, OutBW: 120, InBW: 120},
	}, 60)

	probes := make([]sqpr.StreamID, 4)
	for i := range probes {
		probes[i] = sys.AddStream(6, sqpr.NoOperator, fmt.Sprintf("probe-%d", i))
		sys.PlaceBase(sqpr.HostID(i), probes[i])
	}

	// Per-link monitors: adjacent probe joins. Path monitor: join of the
	// two link monitors (shares both sub-joins).
	link01 := sys.AddOperator([]sqpr.StreamID{probes[0], probes[1]}, 2, 2, "link(0,1)")
	link23 := sys.AddOperator([]sqpr.StreamID{probes[2], probes[3]}, 2, 2, "link(2,3)")
	path := sys.AddOperator([]sqpr.StreamID{link01.Output, link23.Output}, 1, 1.5, "path(0..3)")

	for _, q := range []sqpr.StreamID{link01.Output, link23.Output, path.Output} {
		sys.SetRequested(q, true)
	}

	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 400 * time.Millisecond
	planner := sqpr.NewPlanner(sys, cfg)
	for _, q := range []sqpr.StreamID{link01.Output, link23.Output, path.Output} {
		res, err := planner.Submit(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("monitor %-10s admitted=%v\n", sys.Streams[q].Name, res.Admitted)
	}

	plan := planner.Assignment()
	fmt.Println("\ndeploying plan on the mini stream engine...")
	eng := sqpr.NewEngine(sys, sqpr.DefaultEngineConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng.Deploy(ctx, plan); err != nil {
		log.Fatal(err)
	}

	// Collect result tuples for a while.
	deadline := time.After(1200 * time.Millisecond)
	perStream := map[sqpr.StreamID]int{}
	total := 0
collect:
	for {
		select {
		case <-deadline:
			break collect
		case t := <-eng.Results():
			perStream[t.Stream]++
			total++
		}
	}
	eng.Stop()

	fmt.Printf("delivered %d result tuples:\n", total)
	for _, q := range []sqpr.StreamID{link01.Output, link23.Output, path.Output} {
		fmt.Printf("  %-10s %d tuples\n", sys.Streams[q].Name, perStream[q])
	}

	snap := eng.Monitor().Snapshot()
	fmt.Println("\nper-host measured consumption (monitor):")
	for h := 0; h < sys.NumHosts(); h++ {
		fmt.Printf("  host %d: cpu-work=%.1f sent=%.0f received=%.0f delivered=%.0f drops=%d\n",
			h, snap.CPUWork[h], snap.Sent[h], snap.Received[h], snap.Delivered[h], snap.Drops[h])
	}
}
