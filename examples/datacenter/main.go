// Datacenter: the paper's motivating scenario — a resource-scarce,
// virtualised data centre where a planner must admit as many continuous
// queries as possible without over-provisioning. This example compares
// SQPR against the heuristic baseline and the optimistic bound on the same
// workload, then prints where each approach saturates. Every planner is
// driven through the one sqpr.QueryPlanner interface — no per-baseline
// call shapes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sqpr"
)

func main() {
	const numQueries = 40

	build := func() (*sqpr.System, []sqpr.StreamID) {
		sys := sqpr.BuildSystem(sqpr.SystemConfig{
			NumHosts:   8,
			CPUPerHost: 6,
			OutBW:      60,
			InBW:       60,
			LinkCap:    25,
		})
		wcfg := sqpr.DefaultWorkloadConfig()
		wcfg.NumBaseStreams = 40
		wcfg.NumQueries = numQueries
		wcfg.Zipf = 1 // skewed popularity → overlap → reuse opportunities
		wcfg.Seed = 99
		w := sqpr.GenerateWorkload(sys, wcfg)
		return sys, w.Queries
	}

	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 200 * time.Millisecond

	// One entry per competitor; each gets its own identically-generated
	// system and workload.
	contenders := []struct {
		name string
		make func(sys *sqpr.System) sqpr.QueryPlanner
	}{
		{"sqpr", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewPlanner(sys, cfg) }},
		{"heuristic", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewHeuristicPlanner(sys, sqpr.PaperWeights()) }},
		{"bound", func(sys *sqpr.System) sqpr.QueryPlanner { return sqpr.NewBoundPlanner(sys) }},
	}

	ctx := context.Background()
	curves := make([][]int, len(contenders))
	for i, c := range contenders {
		sys, queries := build()
		p := c.make(sys)
		for _, q := range queries {
			if _, err := p.Submit(ctx, q); err != nil {
				log.Fatal(err)
			}
			curves[i] = append(curves[i], p.AdmittedCount())
		}
	}

	fmt.Println("inputs  sqpr  heuristic  bound")
	for i := 4; i <= numQueries; i += 4 {
		fmt.Printf("%6d  %4d  %9d  %5d\n", i, curves[0][i-1], curves[1][i-1], curves[2][i-1])
	}
	fmt.Printf("\nfinal: SQPR %d, heuristic %d, optimistic bound %d (of %d submitted)\n",
		curves[0][numQueries-1], curves[1][numQueries-1], curves[2][numQueries-1], numQueries)

	gap := 1 - float64(curves[0][numQueries-1])/float64(curves[2][numQueries-1])
	fmt.Printf("SQPR optimality gap vs bound: %.0f%% (paper reports < 25%%)\n", 100*gap)
}
