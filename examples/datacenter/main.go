// Datacenter: the paper's motivating scenario — a resource-scarce,
// virtualised data centre where a planner must admit as many continuous
// queries as possible without over-provisioning. This example compares
// SQPR against the heuristic baseline and the optimistic bound on the same
// workload, then prints where each approach saturates.
package main

import (
	"fmt"
	"log"
	"time"

	"sqpr"
)

func main() {
	const numQueries = 40

	build := func() (*sqpr.System, []sqpr.StreamID) {
		sys := sqpr.BuildSystem(sqpr.SystemConfig{
			NumHosts:   8,
			CPUPerHost: 6,
			OutBW:      60,
			InBW:       60,
			LinkCap:    25,
		})
		wcfg := sqpr.DefaultWorkloadConfig()
		wcfg.NumBaseStreams = 40
		wcfg.NumQueries = numQueries
		wcfg.Zipf = 1 // skewed popularity → overlap → reuse opportunities
		wcfg.Seed = 99
		w := sqpr.GenerateWorkload(sys, wcfg)
		return sys, w.Queries
	}

	// SQPR.
	sysA, queriesA := build()
	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 200 * time.Millisecond
	planner := sqpr.NewPlanner(sysA, cfg)
	var sqprCurve []int
	for _, q := range queriesA {
		if _, err := planner.Submit(q); err != nil {
			log.Fatal(err)
		}
		sqprCurve = append(sqprCurve, planner.AdmittedCount())
	}

	// Heuristic baseline.
	sysB, queriesB := build()
	h := sqpr.NewHeuristicPlanner(sysB, sqpr.PaperWeights())
	var heurCurve []int
	for _, q := range queriesB {
		h.Submit(q)
		heurCurve = append(heurCurve, h.AdmittedCount())
	}

	// Optimistic bound.
	sysC, queriesC := build()
	b := sqpr.NewBoundPlanner(sysC)
	var boundCurve []int
	for _, q := range queriesC {
		b.Submit(q)
		boundCurve = append(boundCurve, b.AdmittedCount())
	}

	fmt.Println("inputs  sqpr  heuristic  bound")
	for i := 4; i <= numQueries; i += 4 {
		fmt.Printf("%6d  %4d  %9d  %5d\n", i, sqprCurve[i-1], heurCurve[i-1], boundCurve[i-1])
	}
	fmt.Printf("\nfinal: SQPR %d, heuristic %d, optimistic bound %d (of %d submitted)\n",
		sqprCurve[numQueries-1], heurCurve[numQueries-1], boundCurve[numQueries-1], numQueries)

	gap := 1 - float64(sqprCurve[numQueries-1])/float64(boundCurve[numQueries-1])
	fmt.Printf("SQPR optimality gap vs bound: %.0f%% (paper reports < 25%%)\n", 100*gap)
}
