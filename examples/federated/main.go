// Federated: the paper's §VII outlook — "query planning across federated
// data centres by first assigning queries to sites and then planning
// queries within sites". Two "data centres" of four hosts each are managed
// by the hierarchical planner: each query is routed to the site holding
// most of its source streams and placed there by SQPR; queries straddling
// both sites fall back to cross-site planning. The example compares
// admissions and planning effort against flat (whole-cluster) SQPR.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sqpr"
)

func build() (*sqpr.System, []sqpr.StreamID) {
	sys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts:   8, // hosts 0-3 = site A, hosts 4-7 = site B
		CPUPerHost: 6,
		OutBW:      70,
		InBW:       70,
		LinkCap:    30,
	})
	wcfg := sqpr.DefaultWorkloadConfig()
	wcfg.NumBaseStreams = 40
	wcfg.NumQueries = 24
	wcfg.Arities = []int{2, 3}
	wcfg.Seed = 11
	w := sqpr.GenerateWorkload(sys, wcfg)
	return sys, w.Queries
}

func main() {
	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 150 * time.Millisecond

	// Hierarchical: two sites.
	sysH, queriesH := build()
	hier := sqpr.NewHierarchicalPlanner(sysH, cfg, 2)
	fmt.Println("site partition:")
	for i, site := range hier.Sites() {
		fmt.Printf("  site %d: hosts %v\n", i, site)
	}
	ctx := context.Background()
	startH := time.Now()
	for _, q := range queriesH {
		hier.Submit(ctx, q)
	}
	hierTime := time.Since(startH)
	if err := hier.Assignment().Validate(sysH); err != nil {
		log.Fatalf("hierarchical plan invalid: %v", err)
	}

	// Flat SQPR over the whole cluster for comparison.
	sysF, queriesF := build()
	cfgFlat := cfg
	cfgFlat.MaxCandidateHosts = 8
	flat := sqpr.NewPlanner(sysF, cfgFlat)
	startF := time.Now()
	for _, q := range queriesF {
		if _, err := flat.Submit(ctx, q); err != nil {
			log.Fatal(err)
		}
	}
	flatTime := time.Since(startF)

	fmt.Printf("\n              admitted   total-plan-time\n")
	fmt.Printf("hierarchical  %8d   %v\n", hier.AdmittedCount(), hierTime.Round(time.Millisecond))
	fmt.Printf("flat          %8d   %v\n", flat.AdmittedCount(), flatTime.Round(time.Millisecond))

	// Show how many operators stayed inside their site.
	inSite, crossSite := 0, 0
	for s, h := range hier.Assignment().Provides {
		site := 0
		if h >= 4 {
			site = 1
		}
		local := true
		for pl, on := range hier.Assignment().Ops {
			if !on {
				continue
			}
			plSite := 0
			if pl.Host >= 4 {
				plSite = 1
			}
			if sysH.Operators[pl.Op].Output == s && plSite != site {
				local = false
			}
		}
		if local {
			inSite++
		} else {
			crossSite++
		}
		_ = s
	}
	fmt.Printf("\nresult providers with fully in-site final operators: %d, cross-site: %d\n", inSite, crossSite)
}
