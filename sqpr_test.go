package sqpr_test

import (
	"context"
	"testing"
	"time"

	"sqpr"
)

// TestFacadeEndToEnd exercises the public API surface exactly as the
// README quickstart does: build a system, generate a workload, plan it,
// validate the result, and deploy nothing (examples cover the engine).
func TestFacadeEndToEnd(t *testing.T) {
	sys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts:   4,
		CPUPerHost: 6,
		OutBW:      80,
		InBW:       80,
		LinkCap:    40,
	})
	wcfg := sqpr.DefaultWorkloadConfig()
	wcfg.NumBaseStreams = 20
	wcfg.NumQueries = 8
	wcfg.Arities = []int{2, 3}
	w := sqpr.GenerateWorkload(sys, wcfg)

	cfg := sqpr.DefaultPlannerConfig()
	cfg.SolveTimeout = 150 * time.Millisecond
	p := sqpr.NewPlanner(sys, cfg)
	for _, q := range w.Queries {
		if _, err := p.Submit(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if p.AdmittedCount() == 0 {
		t.Fatal("facade planner admitted nothing")
	}
	if err := p.Assignment().Validate(sys); err != nil {
		t.Fatalf("facade plan infeasible: %v", err)
	}
}

func TestQuickPlanHelper(t *testing.T) {
	sys := sqpr.NewSystem([]sqpr.Host{
		{ID: 0, CPU: 10, OutBW: 100, InBW: 100},
		{ID: 1, CPU: 10, OutBW: 100, InBW: 100},
	}, 50)
	a := sys.AddStream(5, sqpr.NoOperator, "a")
	b := sys.AddStream(5, sqpr.NoOperator, "b")
	sys.PlaceBase(0, a)
	sys.PlaceBase(1, b)
	op := sys.AddOperator([]sqpr.StreamID{a, b}, 1, 2, "ab")
	sys.SetRequested(op.Output, true)

	n, err := sqpr.QuickPlan(context.Background(), sys, []sqpr.StreamID{op.Output}, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("QuickPlan admitted %d, want 1", n)
	}
}

func TestBaselinesViaFacade(t *testing.T) {
	sys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts: 3, CPUPerHost: 6, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	wcfg := sqpr.DefaultWorkloadConfig()
	wcfg.NumBaseStreams = 12
	wcfg.NumQueries = 6
	wcfg.Arities = []int{2}
	w := sqpr.GenerateWorkload(sys, wcfg)

	h := sqpr.NewHeuristicPlanner(sys, sqpr.PaperWeights())
	sodaSys := sqpr.BuildSystem(sqpr.SystemConfig{
		NumHosts: 3, CPUPerHost: 6, OutBW: 80, InBW: 80, LinkCap: 40,
	})
	w2 := sqpr.GenerateWorkload(sodaSys, wcfg)
	s := sqpr.NewSODAPlanner(sodaSys, sqpr.PaperWeights())
	bnd := sqpr.NewBoundPlanner(sys)

	ctx := context.Background()
	for i := range w.Queries {
		h.Submit(ctx, w.Queries[i])
		s.Submit(ctx, w2.Queries[i])
		bnd.Submit(ctx, w.Queries[i])
	}
	if h.AdmittedCount() == 0 || s.AdmittedCount() == 0 || bnd.AdmittedCount() == 0 {
		t.Fatalf("baselines admitted %d/%d/%d", h.AdmittedCount(), s.AdmittedCount(), bnd.AdmittedCount())
	}
	if h.AdmittedCount() > bnd.AdmittedCount() {
		t.Fatal("heuristic exceeded the optimistic bound")
	}
}
