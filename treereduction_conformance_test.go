// Randomized conformance of the MILP tree-reduction layer at the planner
// level: with presolve, root cuts, reduced-cost fixing and pseudo-cost
// branching on versus off, every submission of a seeded workload must reach
// the identical admission decision, and the final allocations must score
// the identical paper objective. CI runs this under -race (the large-model
// stagnation stop and all solver scratch pooling are exercised on the way).
package sqpr_test

import (
	"context"
	"math"
	"testing"
	"time"

	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/sim"
)

// paperObjective scores an assignment with the paper's weighted objective
// (III.3), normalised exactly like the planner's.
func paperObjective(sys *dsps.System, a *dsps.Assignment, w core.Weights) float64 {
	u := a.ComputeUsage(sys)
	totalLink := sys.TotalLinkCap()
	if totalLink <= 0 {
		totalLink = 1
	}
	totalCPU := sys.TotalCPU()
	if totalCPU <= 0 {
		totalCPU = 1
	}
	maxCPU := 0.0
	for _, h := range sys.Hosts {
		if h.CPU > maxCPU {
			maxCPU = h.CPU
		}
	}
	if maxCPU <= 0 {
		maxCPU = 1
	}
	return w.L1*float64(a.SatisfiedQueries()) -
		w.L2*u.Network/totalLink -
		w.L3*u.TotalCPU()/totalCPU -
		w.L4*u.MaxCPU()/maxCPU
}

// objTol bounds the final-objective difference between the two runs. The
// admission term (λ1) must match exactly — that is asserted separately via
// the per-query decisions — while the sub-λ1 placement terms may differ by
// the per-solve absolute gap the planner itself permits.
const objTol = 1e-6

func TestTreeReductionPlannerConformance(t *testing.T) {
	instances := 50
	if testing.Short() {
		instances = 10
	}
	for seed := int64(1); seed <= int64(instances); seed++ {
		sc := sim.DefaultScale()
		sc.Hosts = 6
		sc.BaseStreams = 20
		sc.Queries = 8
		sc.Seed = seed
		// Generous, node-bounded budgets keep both searches deterministic:
		// the solves end on node limits and gap criteria, never on wall
		// clock.
		sc.Timeout = 10 * time.Second

		run := func(disable bool) (*core.Planner, *dsps.System, []bool) {
			env := sim.BuildEnv(sc)
			cfg := core.DefaultConfig()
			cfg.SolveTimeout = sc.Timeout
			cfg.MaxCandidateHosts = 6
			cfg.DisableTreeReduction = disable
			p := core.NewPlanner(env.Sys, cfg)
			ctx := context.Background()
			decisions := make([]bool, 0, len(env.Queries))
			for _, q := range env.Queries {
				res, err := p.Submit(ctx, q)
				if err != nil {
					t.Fatalf("seed %d disable=%v: %v", seed, disable, err)
				}
				decisions = append(decisions, res.Admitted)
			}
			return p, env.Sys, decisions
		}
		pOn, sysOn, dOn := run(false)
		pOff, sysOff, dOff := run(true)

		for i := range dOn {
			if dOn[i] != dOff[i] {
				t.Fatalf("seed %d: query %d admitted=%v with tree reduction, %v without",
					seed, i, dOn[i], dOff[i])
			}
		}
		if pOn.AdmittedCount() != pOff.AdmittedCount() {
			t.Fatalf("seed %d: admitted %d vs %d", seed, pOn.AdmittedCount(), pOff.AdmittedCount())
		}
		w := core.PaperWeights()
		objOn := paperObjective(sysOn, pOn.Assignment(), w)
		objOff := paperObjective(sysOff, pOff.Assignment(), w)
		if math.Abs(objOn-objOff) > objTol {
			t.Fatalf("seed %d: final objective %.4f with tree reduction, %.4f without",
				seed, objOn, objOff)
		}
	}
}
