#!/bin/sh
# Perf-regression smoke: re-runs the bench suite into a scratch file and
# fails when
#   - us_per_plan regressed more than 25% against the committed
#     BENCH_3.json (wall-clock; assumes CI hardware comparable to the
#     baseline machine — the deterministic checks below catch real solver
#     regressions even when the hardware is not),
#   - milp_nodes_per_solve grew against the committed value (the search is
#     deterministic, so the node count is hardware-independent),
#   - the admitted count drifted from BENCH_2.json, or repair became
#     slower than (or kept fewer admissions than) a cold full re-solve
#     (both enforced inside bench.sh itself),
#   - the admission service's batch-coalescing speedup over serialized
#     submission collapsed below 1.2x on the saturated workload, its
#     pre-saturation throughput fell materially below serialized (0.8x,
#     checked in bench.sh — the sparse engine finishes pre-saturation
#     solves before submitters queue, so there is nothing to coalesce
#     there), or its pre-saturation admitted set drifted from the
#     serialized baseline (set equality enforced inside bench.sh; ratios
#     are checked because they are same-run, same-hardware comparisons and
#     thus hardware-independent),
#   - the sparse-engine large-model solve shrank its compiled model (the
#     batch-union closure must stay in the ~9k-var size class), regressed
#     its wall clock more than 25% vs the committed BENCH_5.json, or grew
#     its memory per solve more than 50% (admitted-set equality vs the
#     serialized baseline and the hard 1 GiB memory ceiling are enforced
#     inside bench.sh).
#
# Usage: scripts/perfcheck.sh
set -eu

cd "$(dirname "$0")/.."

committed_us=$(sed -n 's/.*"us_per_plan": \([0-9.]*\).*/\1/p' BENCH_3.json)
committed_nodes=$(sed -n 's/.*"milp_nodes_per_solve": \([0-9.]*\).*/\1/p' BENCH_3.json)
[ -n "$committed_us" ] || { echo "FAIL: no us_per_plan in BENCH_3.json" >&2; exit 1; }
[ -n "$committed_nodes" ] || { echo "FAIL: no milp_nodes_per_solve in BENCH_3.json" >&2; exit 1; }
[ -f BENCH_4.json ] || { echo "FAIL: no committed BENCH_4.json" >&2; exit 1; }
committed_vars=$(sed -n 's/.*"model_vars": \([0-9.]*\).*/\1/p' BENCH_5.json 2>/dev/null)
committed_joint_us=$(sed -n 's/.*"us_per_joint_plan": \([0-9.]*\).*/\1/p' BENCH_5.json 2>/dev/null)
committed_bytes=$(sed -n 's/.*"bytes_per_solve": \([0-9.]*\).*/\1/p' BENCH_5.json 2>/dev/null)
[ -n "$committed_vars" ] || { echo "FAIL: no committed BENCH_5.json (or no model_vars in it)" >&2; exit 1; }
[ -n "$committed_joint_us" ] || { echo "FAIL: no us_per_joint_plan in BENCH_5.json" >&2; exit 1; }
[ -n "$committed_bytes" ] || { echo "FAIL: no bytes_per_solve in BENCH_5.json" >&2; exit 1; }

tmp="$(mktemp)"
tmp4="$(mktemp)"
tmp5="$(mktemp)"
trap 'rm -f "$tmp" "$tmp4" "$tmp5"' EXIT
sh scripts/bench.sh "$tmp" "$tmp4" "$tmp5"

fresh_us=$(sed -n 's/.*"us_per_plan": \([0-9.]*\).*/\1/p' "$tmp")
fresh_nodes=$(sed -n 's/.*"milp_nodes_per_solve": \([0-9.]*\).*/\1/p' "$tmp")
[ -n "$fresh_us" ] || { echo "FAIL: bench run produced no us_per_plan" >&2; exit 1; }

fresh_speedup=$(sed -n 's/.*"svc_speedup_vs_serial": \([0-9.]*\).*/\1/p' "$tmp4")
fresh_sat_speedup=$(sed -n 's/.*"saturated_svc_speedup_vs_serial": \([0-9.]*\).*/\1/p' "$tmp4")
[ -n "$fresh_speedup" ] || { echo "FAIL: bench run produced no svc_speedup_vs_serial" >&2; exit 1; }

fresh_vars=$(sed -n 's/.*"model_vars": \([0-9.]*\).*/\1/p' "$tmp5")
fresh_joint_us=$(sed -n 's/.*"us_per_joint_plan": \([0-9.]*\).*/\1/p' "$tmp5")
fresh_bytes=$(sed -n 's/.*"bytes_per_solve": \([0-9.]*\).*/\1/p' "$tmp5")
[ -n "$fresh_vars" ] || { echo "FAIL: bench run produced no BENCH_5 model_vars" >&2; exit 1; }

awk -v fu="$fresh_us" -v cu="$committed_us" -v fn="$fresh_nodes" -v cn="$committed_nodes" \
	-v sp="$fresh_speedup" -v ssp="$fresh_sat_speedup" \
	-v fv="$fresh_vars" -v cv="$committed_vars" \
	-v fju="$fresh_joint_us" -v cju="$committed_joint_us" \
	-v fb="$fresh_bytes" -v cb="$committed_bytes" 'BEGIN {
	printf "us_per_plan: fresh %s vs committed %s (limit %.0f)\n", fu, cu, cu * 1.25
	printf "milp_nodes_per_solve: fresh %s vs committed %s\n", fn, cn
	printf "service speedup vs serialized: %sx pre-saturation (floor 0.8), %sx saturated (floor 1.2)\n", sp, ssp
	printf "large model: %s vars (committed %s), %s us/joint-plan (limit %.0f), %s B/solve (limit %.0f)\n", fv, cv, fju, cju * 1.25, fb, cb * 1.5
	fail = 0
	if (fu + 0 > cu * 1.25) {
		print "FAIL: us_per_plan regressed more than 25% vs BENCH_3.json" > "/dev/stderr"
		fail = 1
	}
	if (fn + 0 > cn * 1.05) {
		print "FAIL: milp_nodes_per_solve grew vs BENCH_3.json" > "/dev/stderr"
		fail = 1
	}
	if (sp + 0 < 0.8) {
		print "FAIL: service pre-saturation throughput fell below 0.8x of serialized submission" > "/dev/stderr"
		fail = 1
	}
	if (ssp + 0 < 1.2) {
		print "FAIL: saturated service speedup vs serialized submission fell below 1.2x" > "/dev/stderr"
		fail = 1
	}
	if (fv + 0 < cv * 0.95) {
		print "FAIL: large-model variable count shrank vs BENCH_5.json (batch union no longer whole?)" > "/dev/stderr"
		fail = 1
	}
	if (fju + 0 > cju * 1.25) {
		print "FAIL: large-model joint solve regressed more than 25% vs BENCH_5.json" > "/dev/stderr"
		fail = 1
	}
	if (fb + 0 > cb * 1.5) {
		print "FAIL: large-model memory per solve grew more than 50% vs BENCH_5.json" > "/dev/stderr"
		fail = 1
	}
	exit fail
}'
echo "perf check passed"
