#!/bin/sh
# Perf-regression smoke: re-runs the bench suite into a scratch file and
# fails when
#   - us_per_plan regressed more than 25% against the committed
#     BENCH_3.json (wall-clock; assumes CI hardware comparable to the
#     baseline machine — the deterministic checks below catch real solver
#     regressions even when the hardware is not),
#   - milp_nodes_per_solve grew against the committed value (the search is
#     deterministic, so the node count is hardware-independent),
#   - the admitted count drifted from BENCH_2.json, or repair became
#     slower than (or kept fewer admissions than) a cold full re-solve
#     (both enforced inside bench.sh itself),
#   - the admission service's batch-coalescing speedup over serialized
#     submission collapsed below 1.2x, or its pre-saturation admitted set
#     drifted from the serialized baseline (set equality enforced inside
#     bench.sh; the speedup ratio is checked here because it is a same-run,
#     same-hardware comparison and thus hardware-independent).
#
# Usage: scripts/perfcheck.sh
set -eu

cd "$(dirname "$0")/.."

committed_us=$(sed -n 's/.*"us_per_plan": \([0-9.]*\).*/\1/p' BENCH_3.json)
committed_nodes=$(sed -n 's/.*"milp_nodes_per_solve": \([0-9.]*\).*/\1/p' BENCH_3.json)
[ -n "$committed_us" ] || { echo "FAIL: no us_per_plan in BENCH_3.json" >&2; exit 1; }
[ -n "$committed_nodes" ] || { echo "FAIL: no milp_nodes_per_solve in BENCH_3.json" >&2; exit 1; }
[ -f BENCH_4.json ] || { echo "FAIL: no committed BENCH_4.json" >&2; exit 1; }

tmp="$(mktemp)"
tmp4="$(mktemp)"
trap 'rm -f "$tmp" "$tmp4"' EXIT
sh scripts/bench.sh "$tmp" "$tmp4"

fresh_us=$(sed -n 's/.*"us_per_plan": \([0-9.]*\).*/\1/p' "$tmp")
fresh_nodes=$(sed -n 's/.*"milp_nodes_per_solve": \([0-9.]*\).*/\1/p' "$tmp")
[ -n "$fresh_us" ] || { echo "FAIL: bench run produced no us_per_plan" >&2; exit 1; }

fresh_speedup=$(sed -n 's/.*"svc_speedup_vs_serial": \([0-9.]*\).*/\1/p' "$tmp4")
fresh_sat_speedup=$(sed -n 's/.*"saturated_svc_speedup_vs_serial": \([0-9.]*\).*/\1/p' "$tmp4")
[ -n "$fresh_speedup" ] || { echo "FAIL: bench run produced no svc_speedup_vs_serial" >&2; exit 1; }

awk -v fu="$fresh_us" -v cu="$committed_us" -v fn="$fresh_nodes" -v cn="$committed_nodes" \
	-v sp="$fresh_speedup" -v ssp="$fresh_sat_speedup" 'BEGIN {
	printf "us_per_plan: fresh %s vs committed %s (limit %.0f)\n", fu, cu, cu * 1.25
	printf "milp_nodes_per_solve: fresh %s vs committed %s\n", fn, cn
	printf "service speedup vs serialized: %sx pre-saturation, %sx saturated (floor 1.2)\n", sp, ssp
	fail = 0
	if (fu + 0 > cu * 1.25) {
		print "FAIL: us_per_plan regressed more than 25% vs BENCH_3.json" > "/dev/stderr"
		fail = 1
	}
	if (fn + 0 > cn * 1.05) {
		print "FAIL: milp_nodes_per_solve grew vs BENCH_3.json" > "/dev/stderr"
		fail = 1
	}
	if (sp + 0 < 1.2 || ssp + 0 < 1.2) {
		print "FAIL: service throughput speedup vs serialized submission fell below 1.2x" > "/dev/stderr"
		fail = 1
	}
	exit fail
}'
echo "perf check passed"
