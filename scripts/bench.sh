#!/bin/sh
# Runs the benchmark suite and records the perf trajectory in BENCH_1.json.
#
# The headline series is BenchmarkAblationBaseline's us-per-plan (average
# wall-clock per planning call on the compact §V workload), compared against
# the pre-rework number measured on the seed solver (solve path rebuilt
# around warm-started dual simplex + lazy rows in the same change that
# introduced this script). BenchmarkLPResolve's allocs/op guards the
# allocation-free warm re-solve path.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"

# Measured on the seed (pre-rework) solver with the same benchmark.
pre_us_per_plan=70634

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run=NONE -bench='BenchmarkAblationBaseline|BenchmarkLPResolve|BenchmarkMILPNode' \
	-benchtime=3x -count=1 . | tee "$tmp"

awk -v pre="$pre_us_per_plan" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function val(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($(i + 1) == name)
			return $i
	return ""
}
/^BenchmarkAblationBaseline/ {
	us = val("us-per-plan"); adm = val("admitted")
}
/^BenchmarkLPResolve/ {
	lp_ns = $3; lp_allocs = val("allocs/op")
}
/^BenchmarkMILPNode/ {
	node_ns = $3; node_allocs = val("allocs/op"); nodes = val("nodes-per-solve")
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchmark\": \"BenchmarkAblationBaseline\",\n"
	printf "  \"pre_pr_us_per_plan\": %s,\n", pre
	printf "  \"us_per_plan\": %s,\n", us
	printf "  \"speedup_vs_pre_pr\": %.2f,\n", pre / us
	printf "  \"admitted\": %s,\n", adm
	printf "  \"lp_resolve_ns_per_op\": %s,\n", lp_ns
	printf "  \"lp_resolve_allocs_per_op\": %s,\n", lp_allocs
	printf "  \"milp_node_ns_per_op\": %s,\n", node_ns
	printf "  \"milp_node_allocs_per_op\": %s,\n", node_allocs
	printf "  \"milp_nodes_per_solve\": %s\n", nodes
	printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
cat "$out"
