#!/bin/sh
# Runs the benchmark suite and records the perf trajectory in BENCH_3.json,
# BENCH_4.json and BENCH_5.json.
#
# The headline series is BenchmarkAblationBaseline's us-per-plan (average
# wall-clock per planning call on the compact §V workload), compared against
# BENCH_2.json — the tree-reduction solver of the previous rework — and the
# original pre-rework seed solver. BENCH_3 adds the churn-repair subsystem:
# BenchmarkChurnRepair times the delta-MILP Repair after a failure of the
# busiest host against a remove-and-resubmit fallback and a cold full
# re-solve of the entire workload on the degraded system. BENCH_4 adds the
# concurrent admission service: BenchmarkServiceThroughput pushes the Fig-4
# workload through a coalescing plan.Service with 64 concurrent submitters
# against a serialized one-at-a-time baseline, on the pre-saturation prefix
# (where admission is order-independent and the sets must match exactly) and
# on the full saturated workload. BENCH_5 adds the sparse revised-simplex
# engine: BenchmarkLPLargeModel submits an entire workload as ONE joint
# batch solve with the closure cap lifted — the ~9k-variable batch-union
# size class that forced the dense engine into tractability splits — and
# compares its admitted set against the serialized one-at-a-time baseline.
#
# The script FAILS if
#   - the admitted count differs from BENCH_2.json (every perf change must
#     preserve the planner's admission decisions exactly),
#   - the repair path is not faster than the cold full re-solve,
#   - repair keeps fewer admissions than the cold full re-solve,
#   - the service's pre-saturation admitted set differs from the serialized
#     baseline's, or its throughput falls materially below the serialized
#     baseline there (>= 0.8x floor: with the sparse engine individual
#     solves finish before the next submitter arrives pre-saturation, so
#     batches rarely coalesce and the service must simply not cost
#     throughput),
#   - the service is not measurably faster (>= 1.1x submissions/sec) than
#     the serialized baseline on the saturated workload, where solves are
#     slow enough to queue and coalescing pays,
#   - the joint large-model solve admits a different query set than the
#     serialized baseline, compiles fewer than 8000 variables (the model
#     must actually be in the size class the gate is about), or allocates
#     more than 1 GiB per solve (dense-tableau territory), or
#   - a prior BENCH_N.json this script gates against is missing or
#     malformed (loud nonzero exit, never a silent skip).
#
# The micro benchmarks run at -benchtime=30x so arena/pool warm-up (first
# iteration building the solver arenas) does not dominate allocs/op.
#
# Usage: scripts/bench.sh [bench3-output.json] [bench4-output.json] [bench5-output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_3.json}"
out4="${2:-BENCH_4.json}"
out5="${3:-BENCH_5.json}"
base="BENCH_2.json"

# Measured on the seed (pre-rework) solver with the same benchmark.
pre_us_per_plan=70634

# A baseline this script gates against must exist and parse; a missing or
# malformed file means the gate would silently compare against nothing.
[ -f "$base" ] || { echo "FAIL: baseline $base is missing" >&2; exit 1; }
base_us=$(sed -n 's/.*"us_per_plan": \([0-9.]*\).*/\1/p' "$base")
base_admitted=$(sed -n 's/.*"admitted": \([0-9.]*\).*/\1/p' "$base")
[ -n "$base_us" ] || { echo "FAIL: baseline $base is malformed: no us_per_plan" >&2; exit 1; }
[ -n "$base_admitted" ] || { echo "FAIL: baseline $base is malformed: no admitted" >&2; exit 1; }

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run=NONE -bench='BenchmarkAblationBaseline' -benchtime=3x -count=1 . | tee "$tmp"
go test -run=NONE -bench='BenchmarkChurnRepair' -benchtime=3x -count=1 . | tee -a "$tmp"
go test -run=NONE -bench='BenchmarkLPResolve|BenchmarkMILPNode' -benchtime=30x -count=1 . | tee -a "$tmp"
go test -run=NONE -bench='BenchmarkServiceThroughput' -benchtime=3x -count=1 . | tee -a "$tmp"
go test -run=NONE -bench='BenchmarkLPLargeModel' -benchtime=3x -count=1 . | tee -a "$tmp"

awk -v pre="$pre_us_per_plan" -v base_us="$base_us" -v base_admitted="$base_admitted" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function val(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($(i + 1) == name)
			return $i
	return ""
}
/^BenchmarkAblationBaseline/ {
	us = val("us-per-plan"); adm = val("admitted")
	nodes_solve = val("nodes/solve"); cuts_solve = val("cuts/solve")
	fixings_solve = val("fixings/solve")
}
/^BenchmarkChurnRepair/ {
	repair_us = val("repair-us"); resubmit_us = val("resubmit-us")
	cold_us = val("cold-resolve-us")
	repair_adm = val("repair-admitted"); cold_adm = val("cold-admitted")
	repair_mig = val("repair-migrated"); resubmit_mig = val("resubmit-migrated")
}
/^BenchmarkLPResolve/ {
	lp_ns = $3; lp_allocs = val("allocs/op")
}
/^BenchmarkMILPNode/ {
	node_ns = $3; node_allocs = val("allocs/op"); nodes = val("nodes-per-solve")
}
END {
	if (adm != base_admitted) {
		printf "FAIL: admitted count %s differs from BENCH_2 (%s)\n", adm, base_admitted > "/dev/stderr"
		exit 1
	}
	if (repair_us + 0 >= cold_us + 0) {
		printf "FAIL: repair (%s us) is not faster than a cold full re-solve (%s us)\n", repair_us, cold_us > "/dev/stderr"
		exit 1
	}
	if (repair_adm + 0 < cold_adm + 0) {
		printf "FAIL: repair kept %s admissions, cold full re-solve keeps %s\n", repair_adm, cold_adm > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchmark\": \"BenchmarkAblationBaseline\",\n"
	printf "  \"pre_pr_us_per_plan\": %s,\n", base_us
	printf "  \"seed_us_per_plan\": %s,\n", pre
	printf "  \"us_per_plan\": %s,\n", us
	printf "  \"speedup_vs_pre_pr\": %.2f,\n", base_us / us
	printf "  \"speedup_vs_seed\": %.2f,\n", pre / us
	printf "  \"admitted\": %s,\n", adm
	printf "  \"planner_nodes_per_solve\": %s,\n", nodes_solve
	printf "  \"planner_cuts_per_solve\": %s,\n", cuts_solve
	printf "  \"planner_fixings_per_solve\": %s,\n", fixings_solve
	printf "  \"repair_us\": %s,\n", repair_us
	printf "  \"repair_resubmit_us\": %s,\n", resubmit_us
	printf "  \"repair_cold_resolve_us\": %s,\n", cold_us
	printf "  \"repair_speedup_vs_cold\": %.2f,\n", cold_us / repair_us
	printf "  \"repair_admitted\": %s,\n", repair_adm
	printf "  \"repair_cold_admitted\": %s,\n", cold_adm
	printf "  \"repair_migrated\": %s,\n", repair_mig
	printf "  \"repair_resubmit_migrated\": %s,\n", resubmit_mig
	printf "  \"lp_resolve_ns_per_op\": %s,\n", lp_ns
	printf "  \"lp_resolve_allocs_per_op\": %s,\n", lp_allocs
	printf "  \"milp_node_ns_per_op\": %s,\n", node_ns
	printf "  \"milp_node_allocs_per_op\": %s,\n", node_allocs
	printf "  \"milp_nodes_per_solve\": %s\n", nodes
	printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
cat "$out"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function val(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($(i + 1) == name)
			return $i
	return ""
}
/^BenchmarkServiceThroughput/ {
	svc_sps = val("svc-subs-per-sec"); serial_sps = val("serial-subs-per-sec")
	svc_adm = val("svc-admitted"); serial_adm = val("serial-admitted")
	set_equal = val("set-equal"); mean_batch = val("mean-batch")
	sat_svc_sps = val("sat-svc-subs-per-sec"); sat_serial_sps = val("sat-serial-subs-per-sec")
	sat_svc_adm = val("sat-svc-admitted"); sat_serial_adm = val("sat-serial-admitted")
}
END {
	if (set_equal + 0 != 1) {
		printf "FAIL: service admitted a different pre-saturation query set than the serialized baseline\n" > "/dev/stderr"
		exit 1
	}
	if (svc_sps + 0 < serial_sps * 0.8) {
		printf "FAIL: service (%s subs/sec) costs material pre-saturation throughput vs serialized submission (%s subs/sec)\n", svc_sps, serial_sps > "/dev/stderr"
		exit 1
	}
	if (sat_svc_sps + 0 <= sat_serial_sps * 1.1) {
		printf "FAIL: saturated service (%s subs/sec) is not measurably faster than serialized submission (%s subs/sec)\n", sat_svc_sps, sat_serial_sps > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchmark\": \"BenchmarkServiceThroughput\",\n"
	printf "  \"svc_subs_per_sec\": %s,\n", svc_sps
	printf "  \"serial_subs_per_sec\": %s,\n", serial_sps
	printf "  \"svc_speedup_vs_serial\": %.2f,\n", svc_sps / serial_sps
	printf "  \"svc_admitted\": %s,\n", svc_adm
	printf "  \"serial_admitted\": %s,\n", serial_adm
	printf "  \"admitted_set_equal\": %s,\n", set_equal
	printf "  \"mean_coalesced_batch\": %s,\n", mean_batch
	printf "  \"saturated_svc_subs_per_sec\": %s,\n", sat_svc_sps
	printf "  \"saturated_serial_subs_per_sec\": %s,\n", sat_serial_sps
	printf "  \"saturated_svc_speedup_vs_serial\": %.2f,\n", sat_svc_sps / sat_serial_sps
	printf "  \"saturated_svc_admitted\": %s,\n", sat_svc_adm
	printf "  \"saturated_serial_admitted\": %s\n", sat_serial_adm
	printf "}\n"
}' "$tmp" > "$out4"

echo "wrote $out4"
cat "$out4"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function val(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($(i + 1) == name)
			return $i
	return ""
}
/^BenchmarkLPLargeModel/ {
	ns = $3
	vars = val("model-vars"); joint_adm = val("joint-admitted")
	serial_adm = val("serial-admitted"); set_equal = val("set-equal")
	bytes = val("B/op"); allocs = val("allocs/op")
}
END {
	if (vars == "") {
		printf "FAIL: BenchmarkLPLargeModel produced no output\n" > "/dev/stderr"
		exit 1
	}
	if (set_equal + 0 != 1) {
		printf "FAIL: joint large-model solve admitted a different query set than the serialized baseline\n" > "/dev/stderr"
		exit 1
	}
	if (vars + 0 < 8000) {
		printf "FAIL: large model compiled only %s variables (< 8000: not the size class this gate is about)\n", vars > "/dev/stderr"
		exit 1
	}
	if (bytes + 0 > 1073741824) {
		printf "FAIL: large-model solve allocated %s B/op (> 1 GiB: dense-tableau territory)\n", bytes > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchmark\": \"BenchmarkLPLargeModel\",\n"
	printf "  \"model_vars\": %s,\n", vars
	printf "  \"us_per_joint_plan\": %.0f,\n", ns / 1000
	printf "  \"joint_admitted\": %s,\n", joint_adm
	printf "  \"serial_admitted\": %s,\n", serial_adm
	printf "  \"admitted_set_equal\": %s,\n", set_equal
	printf "  \"bytes_per_solve\": %s,\n", bytes
	printf "  \"allocs_per_solve\": %s\n", allocs
	printf "}\n"
}' "$tmp" > "$out5"

echo "wrote $out5"
cat "$out5"
