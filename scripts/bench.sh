#!/bin/sh
# Runs the benchmark suite and records the perf trajectory in BENCH_3.json.
#
# The headline series is BenchmarkAblationBaseline's us-per-plan (average
# wall-clock per planning call on the compact §V workload), compared against
# BENCH_2.json — the tree-reduction solver of the previous rework — and the
# original pre-rework seed solver. BENCH_3 adds the churn-repair subsystem:
# BenchmarkChurnRepair times the delta-MILP Repair after a failure of the
# busiest host against a remove-and-resubmit fallback and a cold full
# re-solve of the entire workload on the degraded system.
#
# The script FAILS if
#   - the admitted count differs from BENCH_2.json (every perf change must
#     preserve the planner's admission decisions exactly),
#   - the repair path is not faster than the cold full re-solve, or
#   - repair keeps fewer admissions than the cold full re-solve.
#
# The micro benchmarks run at -benchtime=30x so arena/pool warm-up (first
# iteration building the solver arenas) does not dominate allocs/op.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_3.json}"
base="BENCH_2.json"

# Measured on the seed (pre-rework) solver with the same benchmark.
pre_us_per_plan=70634

base_us=$(sed -n 's/.*"us_per_plan": \([0-9.]*\).*/\1/p' "$base")
base_admitted=$(sed -n 's/.*"admitted": \([0-9.]*\).*/\1/p' "$base")

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run=NONE -bench='BenchmarkAblationBaseline' -benchtime=3x -count=1 . | tee "$tmp"
go test -run=NONE -bench='BenchmarkChurnRepair' -benchtime=3x -count=1 . | tee -a "$tmp"
go test -run=NONE -bench='BenchmarkLPResolve|BenchmarkMILPNode' -benchtime=30x -count=1 . | tee -a "$tmp"

awk -v pre="$pre_us_per_plan" -v base_us="$base_us" -v base_admitted="$base_admitted" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
function val(name,    i) {
	for (i = 1; i <= NF; i++)
		if ($(i + 1) == name)
			return $i
	return ""
}
/^BenchmarkAblationBaseline/ {
	us = val("us-per-plan"); adm = val("admitted")
	nodes_solve = val("nodes/solve"); cuts_solve = val("cuts/solve")
	fixings_solve = val("fixings/solve")
}
/^BenchmarkChurnRepair/ {
	repair_us = val("repair-us"); resubmit_us = val("resubmit-us")
	cold_us = val("cold-resolve-us")
	repair_adm = val("repair-admitted"); cold_adm = val("cold-admitted")
	repair_mig = val("repair-migrated"); resubmit_mig = val("resubmit-migrated")
}
/^BenchmarkLPResolve/ {
	lp_ns = $3; lp_allocs = val("allocs/op")
}
/^BenchmarkMILPNode/ {
	node_ns = $3; node_allocs = val("allocs/op"); nodes = val("nodes-per-solve")
}
END {
	if (adm != base_admitted) {
		printf "FAIL: admitted count %s differs from BENCH_2 (%s)\n", adm, base_admitted > "/dev/stderr"
		exit 1
	}
	if (repair_us + 0 >= cold_us + 0) {
		printf "FAIL: repair (%s us) is not faster than a cold full re-solve (%s us)\n", repair_us, cold_us > "/dev/stderr"
		exit 1
	}
	if (repair_adm + 0 < cold_adm + 0) {
		printf "FAIL: repair kept %s admissions, cold full re-solve keeps %s\n", repair_adm, cold_adm > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"benchmark\": \"BenchmarkAblationBaseline\",\n"
	printf "  \"pre_pr_us_per_plan\": %s,\n", base_us
	printf "  \"seed_us_per_plan\": %s,\n", pre
	printf "  \"us_per_plan\": %s,\n", us
	printf "  \"speedup_vs_pre_pr\": %.2f,\n", base_us / us
	printf "  \"speedup_vs_seed\": %.2f,\n", pre / us
	printf "  \"admitted\": %s,\n", adm
	printf "  \"planner_nodes_per_solve\": %s,\n", nodes_solve
	printf "  \"planner_cuts_per_solve\": %s,\n", cuts_solve
	printf "  \"planner_fixings_per_solve\": %s,\n", fixings_solve
	printf "  \"repair_us\": %s,\n", repair_us
	printf "  \"repair_resubmit_us\": %s,\n", resubmit_us
	printf "  \"repair_cold_resolve_us\": %s,\n", cold_us
	printf "  \"repair_speedup_vs_cold\": %.2f,\n", cold_us / repair_us
	printf "  \"repair_admitted\": %s,\n", repair_adm
	printf "  \"repair_cold_admitted\": %s,\n", cold_adm
	printf "  \"repair_migrated\": %s,\n", repair_mig
	printf "  \"repair_resubmit_migrated\": %s,\n", resubmit_mig
	printf "  \"lp_resolve_ns_per_op\": %s,\n", lp_ns
	printf "  \"lp_resolve_allocs_per_op\": %s,\n", lp_allocs
	printf "  \"milp_node_ns_per_op\": %s,\n", node_ns
	printf "  \"milp_node_allocs_per_op\": %s,\n", node_allocs
	printf "  \"milp_nodes_per_solve\": %s\n", nodes
	printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out"
cat "$out"
