// Seeded churn conformance: across 50 random workloads, the core planner's
// delta-MILP Repair is compared against (a) the remove-and-resubmit
// fallback on an identical planner and (b) a cold full re-solve of the
// whole workload on the degraded system. Repair must keep at least as many
// admissions as the cold re-solve preserves, must never migrate more
// operators than remove-and-resubmit moves, and must migrate strictly
// fewer on at least half the seeds — the measurable payoff of pinning and
// the migration-cost objective. A second suite drives Repair through every
// planner of the repository and asserts the shared interface invariants.
// CI runs both under -race.
package sqpr_test

import (
	"context"
	"testing"
	"time"

	"sqpr"
	"sqpr/internal/core"
	"sqpr/internal/dsps"
	"sqpr/internal/plan"
	"sqpr/internal/sim"
)

// churnConformanceScale is deliberately modest: solves stay node-capped
// (not wall-clock-capped), so admission decisions are deterministic even
// under -race slowdowns.
func churnConformanceScale(seed int64) sim.Scale {
	sc := sim.DefaultScale()
	sc.Hosts = 8
	sc.BaseStreams = 40
	sc.Queries = 22
	sc.Timeout = 2 * time.Second
	sc.MaxCandHost = 6
	sc.Seed = seed
	return sc
}

func newChurnCorePlanner(sys *dsps.System, sc sim.Scale) *core.Planner {
	cfg := core.DefaultConfig()
	cfg.SolveTimeout = sc.Timeout
	cfg.MaxCandidateHosts = sc.MaxCandHost
	return core.NewPlanner(sys, cfg)
}

func submitWorkload(t *testing.T, p plan.QueryPlanner, queries []dsps.StreamID) {
	t.Helper()
	ctx := context.Background()
	for _, q := range queries {
		if _, err := p.Submit(ctx, q); err != nil {
			t.Fatalf("Submit(%d): %v", q, err)
		}
	}
}

// busiestPlannedHost returns the host carrying the most operator
// placements (ties to the lowest ID), the most disruptive single failure.
func busiestPlannedHost(a *dsps.Assignment) dsps.HostID {
	counts := map[dsps.HostID]int{}
	for pl, on := range a.Ops {
		if on {
			counts[pl.Host]++
		}
	}
	best, bestN := dsps.HostID(0), -1
	for h, n := range counts {
		if n > bestN || (n == bestN && h < best) {
			best, bestN = h, n
		}
	}
	return best
}

func assertNoDownHostUsage(t *testing.T, sys *dsps.System, a *dsps.Assignment, seed int) {
	t.Helper()
	for pl, on := range a.Ops {
		if on && !sys.HostUsable(pl.Host) {
			t.Fatalf("seed %d: operator %d still on down host %d", seed, pl.Op, pl.Host)
		}
	}
	for f, on := range a.Flows {
		if on && (!sys.HostUsable(f.From) || !sys.HostUsable(f.To)) {
			t.Fatalf("seed %d: flow %+v touches a down host", seed, f)
		}
	}
	for s, h := range a.Provides {
		if !sys.HostUsable(h) {
			t.Fatalf("seed %d: stream %d still provided by down host %d", seed, s, h)
		}
	}
}

func TestChurnRepairConformance(t *testing.T) {
	const seeds = 50
	ctx := context.Background()
	strictlyFewer := 0
	for seed := 1; seed <= seeds; seed++ {
		sc := churnConformanceScale(int64(seed))

		// Planner A: delta-MILP repair.
		envA := sim.BuildEnv(sc)
		pA := newChurnCorePlanner(envA.Sys, sc)
		submitWorkload(t, pA, envA.Queries)
		initialAdmitted := pA.AdmittedCount()
		fail := busiestPlannedHost(pA.Assignment())
		events := []plan.Event{plan.FailHost(fail)}
		rrA, err := pA.Repair(ctx, events)
		if err != nil {
			t.Fatalf("seed %d: Repair: %v", seed, err)
		}
		if err := pA.Assignment().Validate(envA.Sys); err != nil {
			t.Fatalf("seed %d: repaired state infeasible: %v", seed, err)
		}
		assertNoDownHostUsage(t, envA.Sys, pA.Assignment(), seed)
		if len(rrA.Kept)+len(rrA.Dropped) != len(rrA.Affected) {
			t.Fatalf("seed %d: kept %d + dropped %d != affected %d",
				seed, len(rrA.Kept), len(rrA.Dropped), len(rrA.Affected))
		}
		keptA := pA.AdmittedCount()

		// Planner B: remove-and-resubmit fallback, identical start state.
		envB := sim.BuildEnv(sc)
		pB := newChurnCorePlanner(envB.Sys, sc)
		submitWorkload(t, pB, envB.Queries)
		if pB.AdmittedCount() != initialAdmitted {
			t.Fatalf("seed %d: nondeterministic baseline: %d vs %d admitted",
				seed, pB.AdmittedCount(), initialAdmitted)
		}
		rrB, err := plan.RepairByResubmit(ctx, envB.Sys, pB, events)
		if err != nil {
			t.Fatalf("seed %d: RepairByResubmit: %v", seed, err)
		}
		if err := pB.Assignment().Validate(envB.Sys); err != nil {
			t.Fatalf("seed %d: resubmit state infeasible: %v", seed, err)
		}

		// Planner C: cold full re-solve of the workload on the degraded
		// system — what "forget everything and start over" would keep.
		envC := sim.BuildEnv(sc)
		if err := plan.ApplyEvents(envC.Sys, events); err != nil {
			t.Fatalf("seed %d: ApplyEvents: %v", seed, err)
		}
		pC := newChurnCorePlanner(envC.Sys, sc)
		submitWorkload(t, pC, envC.Queries)
		keptC := pC.AdmittedCount()

		if keptA < keptC {
			t.Errorf("seed %d: repair kept %d admissions, cold full re-solve keeps %d",
				seed, keptA, keptC)
		}
		if rrA.Migrated > rrB.Migrated {
			t.Errorf("seed %d: repair migrated %d operators, remove-and-resubmit moved only %d",
				seed, rrA.Migrated, rrB.Migrated)
		}
		if rrA.Migrated < rrB.Migrated {
			strictlyFewer++
		}
	}
	if strictlyFewer < seeds/2 {
		t.Errorf("repair migrated strictly fewer operators than remove-and-resubmit on only %d/%d seeds, want >= %d",
			strictlyFewer, seeds, seeds/2)
	}
}

// TestRepairInterfaceConformance drives Repair through all five planners:
// a failure of the busiest host followed by its recovery must leave every
// planner with a valid state that never references a down host, and the
// repair bookkeeping must be consistent.
func TestRepairInterfaceConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			sys, queries := conformanceEnv()
			p := tc.make(sys)
			for _, q := range queries {
				if _, err := p.Submit(ctx, q); err != nil {
					t.Fatalf("Submit(%d): %v", q, err)
				}
			}
			fail := busiestPlannedHost(p.Assignment())
			rr, err := p.Repair(ctx, []sqpr.Event{sqpr.FailHost(fail)})
			if err != nil {
				t.Fatalf("Repair(fail %d): %v", fail, err)
			}
			if len(rr.Kept)+len(rr.Dropped) != len(rr.Affected) {
				t.Fatalf("kept %d + dropped %d != affected %d",
					len(rr.Kept), len(rr.Dropped), len(rr.Affected))
			}
			if err := p.Assignment().Validate(sys); err != nil {
				t.Fatalf("post-repair state infeasible: %v", err)
			}
			assertNoDownHostUsage(t, sys, p.Assignment(), 0)

			// Repairing the same failure again is a no-op.
			rr2, err := p.Repair(ctx, []sqpr.Event{sqpr.FailHost(fail)})
			if err != nil {
				t.Fatalf("idempotent Repair: %v", err)
			}
			if len(rr2.Affected) != 0 {
				t.Fatalf("second repair of the same failure affected %v", rr2.Affected)
			}

			// Recovery is also an event; afterwards dropped queries can be
			// resubmitted without error.
			if _, err := p.Repair(ctx, []sqpr.Event{sqpr.RecoverHost(fail)}); err != nil {
				t.Fatalf("Repair(recover %d): %v", fail, err)
			}
			for _, q := range rr.Dropped {
				if _, err := p.Submit(ctx, q); err != nil {
					t.Fatalf("resubmit dropped query %d: %v", q, err)
				}
			}
			if err := p.Assignment().Validate(sys); err != nil {
				t.Fatalf("post-recovery state infeasible: %v", err)
			}

			// Malformed events are rejected without corrupting state.
			before := snapshot(p)
			if _, err := p.Repair(ctx, []sqpr.Event{sqpr.FailHost(sqpr.HostID(sys.NumHosts() + 7))}); err == nil {
				t.Fatal("Repair accepted an out-of-range host")
			}
			if snapshot(p) != before {
				t.Fatal("rejected event mutated planner state")
			}
		})
	}
}
