// Durable-service conformance suite: every planner implements StatePorter,
// so one table-driven test drives all five through a journaling admission
// service with a randomized submit/remove/repair schedule and asserts that
// a restart from the journal rebuilds byte-identical state with zero
// planning solves. A second suite kills the journal at every registered
// crash point mid-run and checks recovery lands on the exact acknowledged
// state (or the one in-flight op past it, when the crash hit after the
// record became durable). Run under -race in CI.
package sqpr_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"sqpr"
	"sqpr/internal/wal"
	"sqpr/internal/wal/walfault"
)

// driveReplaySchedule applies a deterministic pseudo-random mix of
// submits, removes and host repairs through the service. Every applied
// operation is acknowledged (and hence journaled) before the next starts.
func driveReplaySchedule(t *testing.T, svc *sqpr.Service, sys *sqpr.System, queries []sqpr.StreamID, seed int64) {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	hostDown := make([]bool, sys.NumHosts())
	for i := 0; i < 3*len(queries); i++ {
		switch rng.Intn(6) {
		case 0: // remove a random admitted query
			for _, q := range queries {
				if svc.Admitted(q) && rng.Intn(2) == 0 {
					if err := svc.Remove(q); err != nil {
						t.Fatalf("op %d: Remove(%d): %v", i, q, err)
					}
					break
				}
			}
		case 1: // flip one host's availability through Repair
			h := rng.Intn(len(hostDown))
			ev := sqpr.FailHost(sqpr.HostID(h))
			if hostDown[h] {
				ev = sqpr.RecoverHost(sqpr.HostID(h))
			}
			if _, err := svc.Repair(ctx, []sqpr.Event{ev}); err != nil {
				t.Fatalf("op %d: Repair(%v): %v", i, ev, err)
			}
			hostDown[h] = !hostDown[h]
		default: // submit the next query (duplicates exercise reuse)
			q := queries[rng.Intn(len(queries))]
			if _, err := svc.Submit(ctx, q); err != nil {
				t.Fatalf("op %d: Submit(%d): %v", i, q, err)
			}
		}
	}
	// End with every host back up so the final state is typical.
	var evs []sqpr.Event
	for h, down := range hostDown {
		if down {
			evs = append(evs, sqpr.RecoverHost(sqpr.HostID(h)))
		}
	}
	if len(evs) > 0 {
		if _, err := svc.Repair(ctx, evs); err != nil {
			t.Fatalf("final recovery repair: %v", err)
		}
	}
	// With capacity restored, resubmit everything once so the final state
	// carries live admissions for the equivalence check to bite on.
	for _, q := range queries {
		if _, err := svc.Submit(ctx, q); err != nil {
			t.Fatalf("final submit %d: %v", q, err)
		}
	}
}

// TestReplayEquivalenceAcrossPlanners is the all-planner replay test: after
// a randomized schedule through a durable service, a fresh planner opened
// over the same journal must export byte-identical state — admitted set,
// full assignment, host availability and planner-private aux — without a
// single planning call.
func TestReplayEquivalenceAcrossPlanners(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			fs := walfault.New()
			sys, queries := conformanceEnv()
			p := tc.make(sys)
			svc, rs, err := sqpr.OpenService(p, sqpr.ServiceConfig{SnapshotEvery: 6}, fs,
				sqpr.WALOptions{SegmentBytes: 2048})
			if err != nil {
				t.Fatalf("OpenService: %v", err)
			}
			if rs.Records != 0 || rs.UsedSnapshot {
				t.Fatalf("fresh journal recovered state: %+v", rs)
			}
			driveReplaySchedule(t, svc, sys, queries, 42)
			svc.Close()
			want := p.(sqpr.StatePorter).ExportState()
			if len(want.Admitted) == 0 {
				t.Fatal("schedule left nothing admitted; test would be vacuous")
			}

			sys2, _ := conformanceEnv()
			p2 := tc.make(sys2)
			svc2, rs2, err := sqpr.OpenService(p2, sqpr.ServiceConfig{}, fs, sqpr.WALOptions{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer svc2.Close()
			if rs2.Records == 0 && !rs2.UsedSnapshot {
				t.Fatal("reopen replayed nothing")
			}
			got := p2.(sqpr.StatePorter).ExportState()
			if !got.Equal(want) {
				t.Fatalf("replayed state diverged from live state\n got: %+v\nwant: %+v", got, want)
			}
			if solves := p2.Stats().Submissions; solves != 0 {
				t.Fatalf("recovery ran %d planning calls, want 0", solves)
			}
			if rs2.Admitted != len(want.Admitted) {
				t.Fatalf("recovery reports %d admitted, want %d", rs2.Admitted, len(want.Admitted))
			}
		})
	}
}

// TestServiceCrashRecoveryAtEveryPoint is the acceptance test for the
// durability tentpole: for every registered WAL crash point, the journal
// dies mid-run (with a torn unsynced tail left behind), and the restarted
// service must recover to exactly the last acknowledged state — or that
// state plus the single in-flight operation, when the crash struck after
// the record reached (or tore into) the disk image — with zero planning
// solves, and keep working afterwards.
func TestServiceCrashRecoveryAtEveryPoint(t *testing.T) {
	newCorePlanner := conformanceCases()[0].make // "core": the MILP planner
	for _, point := range wal.CrashPoints() {
		t.Run(point, func(t *testing.T) {
			ctx := context.Background()
			fs := walfault.New()
			fs.CrashAt(point, 1)
			fs.SetTear(7)
			sys, queries := conformanceEnv()
			p := newCorePlanner(sys)
			porter := p.(sqpr.StatePorter)
			// Tiny segments and a 2-record snapshot interval so every write
			// path — rotation, append, snapshot, compaction — runs within a
			// few operations and the armed crash point fires early.
			scfg := sqpr.ServiceConfig{SnapshotEvery: 2}
			svc, _, err := sqpr.OpenService(p, scfg, fs, sqpr.WALOptions{SegmentBytes: 256})
			if err != nil {
				t.Fatalf("OpenService: %v", err)
			}

			// Alternate submits and removes until the journal dies. After
			// each acknowledged op the exported state is the new durable
			// baseline; the failed op's state is the one-past-acked bound.
			acked := porter.ExportState()
			var opErr error
			for i := 0; i < 200 && opErr == nil; i++ {
				q := queries[i%len(queries)]
				if svc.Admitted(q) {
					opErr = svc.Remove(q)
				} else {
					_, opErr = svc.Submit(ctx, q)
				}
				if opErr == nil {
					acked = porter.ExportState()
				}
			}
			if opErr == nil {
				t.Fatalf("crash point %s never fired (crashed=%v)", point, fs.Crashed())
			}
			if !errors.Is(opErr, sqpr.ErrWALFailed) {
				t.Fatalf("op failed with %v, want ErrWALFailed", opErr)
			}
			next := porter.ExportState()
			img := fs.Reopen()
			svc.Close()

			sys2, _ := conformanceEnv()
			p2 := newCorePlanner(sys2)
			svc2, rs, err := sqpr.OpenService(p2, scfg, img, sqpr.WALOptions{SegmentBytes: 256})
			if err != nil {
				t.Fatalf("recovery after crash at %s: %v", point, err)
			}
			got := p2.(sqpr.StatePorter).ExportState()
			if !got.Equal(acked) && !got.Equal(next) {
				svc2.Close()
				t.Fatalf("recovered state matches neither the acked state (%d admitted) nor acked+1 (%d admitted); got %d admitted, records=%d torn=%d",
					len(acked.Admitted), len(next.Admitted), len(got.Admitted), rs.Records, rs.TailTruncated)
			}
			if solves := p2.Stats().Submissions; solves != 0 {
				svc2.Close()
				t.Fatalf("recovery ran %d planning calls, want 0", solves)
			}

			// The recovered service must accept new work and journal it.
			q := queries[0]
			var err2 error
			if svc2.Admitted(q) {
				err2 = svc2.Remove(q)
			} else {
				_, err2 = svc2.Submit(ctx, q)
			}
			if err2 != nil {
				svc2.Close()
				t.Fatalf("recovered service rejected follow-up op: %v", err2)
			}
			after := p2.(sqpr.StatePorter).ExportState()
			img2 := img.Reopen()
			svc2.Close()

			sys3, _ := conformanceEnv()
			p3 := newCorePlanner(sys3)
			svc3, _, err := sqpr.OpenService(p3, scfg, img2, sqpr.WALOptions{SegmentBytes: 256})
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			defer svc3.Close()
			if !p3.(sqpr.StatePorter).ExportState().Equal(after) {
				t.Fatal("follow-up op on the recovered service did not persist")
			}
		})
	}
}
